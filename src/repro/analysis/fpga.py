"""FPGA prototype model: CHaiDNN-like accelerator + GuardNN_C additions.

The paper's Table II measures frames/s and GuardNN overhead on an AMD
Xilinx board for {128, 256, 512, 1024} DSPs x {8, 6}-bit precision. We
cannot run a bitstream, so we model the prototype the way Section III
explains its behaviour:

* compute: DSPs implement the MAC array; an INT8 DSP48 packs 2 MACs per
  cycle, and the 6-bit mode nearly doubles throughput again (Table II
  shows ~1.8-1.9x between 8-bit and 6-bit rows);
* memory: a DDR channel shared with the rest of the SoC;
* GuardNN_C overhead "comes mainly from the limited throughput of the
  AES engines" — three pipelined AES-128 engines at the 200 MHz fabric
  clock, so layers whose DRAM traffic approaches the AES throughput
  slow down slightly.

The model runs the *same* systolic/tiling/protection pipeline as the
ASIC simulation, just with CHaiDNN-shaped parameters; Table II's shape
(fps scaling with DSPs, ResNet showing the worst overhead, everything
under ~3%) is produced, not transcribed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.accel.accelerator import AcceleratorConfig, AcceleratorModel
from repro.accel.models import NetworkModel, build_model
from repro.accel.systolic import Dataflow

from repro.protection.guardnn import GuardNNParams, GuardNNProtection
from repro.protection.none import NoProtection


@dataclass(frozen=True)
class FpgaPlatform:
    """Board-level constants."""

    name: str
    freq_mhz: float
    dram_bandwidth_gbps: float
    sram_bytes: int
    lut_budget: int
    ff_budget: int
    bram_budget: int
    dsp_budget: int


#: An Ultrascale+ MPSoC-class platform (ZCU102-like), the CHaiDNN target.
#: ``dram_bandwidth_gbps`` is the *effective* bandwidth the accelerator's
#: AXI HP port sustains against the shared DDR controller (~10 GB/s), not
#: the DDR4 pin rate. Three 200 MHz AES engines deliver 9.6 GB/s — just
#: under it, which is precisely why the paper's overhead "comes mainly
#: from the limited throughput of the AES engines" and why a fourth
#: engine shrinks it.
CHAIDNN_PLATFORM = FpgaPlatform(
    name="ultrascale-plus",
    freq_mhz=200.0,
    dram_bandwidth_gbps=10.0,
    sram_bytes=3 * 1024 * 1024,
    lut_budget=110_000,
    ff_budget=115_000,
    bram_budget=580,
    dsp_budget=2520,
)


@dataclass(frozen=True)
class FpgaConfig:
    """One Table II column: DSP count and precision."""

    dsps: int
    precision_bits: int  # 8 or 6
    platform: FpgaPlatform = CHAIDNN_PLATFORM

    def __post_init__(self):
        if self.precision_bits not in (6, 8):
            raise ValueError("CHaiDNN supports 6-bit and 8-bit modes")
        if self.dsps <= 0:
            raise ValueError("need at least one DSP")

    @property
    def macs_per_cycle(self) -> int:
        """DSP48E2 packs 2 INT8 MACs; the 6-bit mode packs ~4."""
        per_dsp = 2 if self.precision_bits == 8 else 4
        return self.dsps * per_dsp

    def array_shape(self) -> Tuple[int, int]:
        """Map the MAC budget onto a near-square array (rows x cols),
        biased wide like CHaiDNN's output-channel parallelism."""
        macs = self.macs_per_cycle
        rows = 1 << int(math.floor(math.log2(math.sqrt(macs))))
        cols = macs // rows
        return rows, cols

    def to_accelerator_config(self) -> AcceleratorConfig:
        rows, cols = self.array_shape()
        return AcceleratorConfig(
            name=f"chaidnn-{self.dsps}dsp-{self.precision_bits}b",
            pe_rows=rows,
            pe_cols=cols,
            sram_bytes=self.platform.sram_bytes,
            freq_mhz=self.platform.freq_mhz,
            dram_bandwidth_gbps=self.platform.dram_bandwidth_gbps,
            bytes_per_element=1,  # 6-bit values still move as bytes
            dataflow=Dataflow.WEIGHT_STATIONARY,
        )


class FpgaPrototypeModel:
    """Reproduces Table II: throughput (fps) and GuardNN_C overhead."""

    #: Table II's prototype uses three AES engines (Section III-B notes
    #: four would cut the max overhead from 3.1% to ~1.9%).
    def __init__(self, aes_engines: int = 3):
        self.aes_engines = aes_engines

    @staticmethod
    def _fpga_view(network: NetworkModel) -> NetworkModel:
        """CHaiDNN executes the convolutional feature extractor on the
        fabric; the small classifier FC layers run on the ARM host (they
        are not in CHaiDNN's supported-layer set). Table II throughputs
        are therefore conv-pipeline frame rates; we drop Dense layers for
        CNN-family networks to model the same pipeline."""
        if network.family != "cnn":
            return network
        from repro.accel.layers import DenseLayer

        layers = [l for l in network.layers if not isinstance(l, DenseLayer)]
        return NetworkModel(network.name, layers, network.input_elements,
                            network.output_elements, network.family)

    def throughput_fps(self, network: NetworkModel, config: FpgaConfig,
                       protected: bool) -> float:
        accel = AcceleratorModel(config.to_accelerator_config())
        if protected:
            scheme = GuardNNProtection(
                integrity=False,
                params=GuardNNParams(engines=self.aes_engines),
            )
        else:
            scheme = NoProtection()
        result = accel.run(self._fpga_view(network), scheme, training=False, batch=1)
        return result.throughput_samples_per_s()

    def table_row(self, network_name: str, config: FpgaConfig) -> Dict[str, float]:
        """One Table II cell: protected fps and overhead (%) over the
        CHaiDNN baseline."""
        network = build_model(network_name)
        base = self.throughput_fps(network, config, protected=False)
        prot = self.throughput_fps(network, config, protected=True)
        overhead_pct = (base / prot - 1.0) * 100.0 if prot > 0 else float("inf")
        return {
            "network": network_name,
            "dsps": config.dsps,
            "precision": config.precision_bits,
            "baseline_fps": base,
            "guardnn_fps": prot,
            "overhead_pct": overhead_pct,
        }


@dataclass(frozen=True)
class FpgaResourceModel:
    """Section III-B resource overhead: the published open-source AES-128
    core and MicroBlaze footprints relative to the CHaiDNN design at 512
    DSPs / 8-bit."""

    # one open-source AES-128 core (the paper's numbers)
    aes_luts: int = 9_000
    aes_ffs: int = 3_000
    # MicroBlaze with 256 KB local memory
    mcu_luts: int = 2_700
    mcu_ffs: int = 2_200
    mcu_brams: int = 64
    mcu_dsps: int = 6
    # the CHaiDNN baseline the percentages are computed against
    base_luts: int = 110_000
    base_ffs: int = 115_000
    base_brams: int = 580
    base_dsps: int = 512 + 6

    def aes_overhead_pct(self) -> Tuple[float, float]:
        """(LUT %, FF %) for one AES core."""
        return (100.0 * self.aes_luts / self.base_luts,
                100.0 * self.aes_ffs / self.base_ffs)

    def total_overhead(self, aes_engines: int = 3) -> Dict[str, float]:
        luts = self.aes_luts * aes_engines + self.mcu_luts
        ffs = self.aes_ffs * aes_engines + self.mcu_ffs
        return {
            "luts": luts,
            "luts_pct": 100.0 * luts / self.base_luts,
            "ffs": ffs,
            "ffs_pct": 100.0 * ffs / self.base_ffs,
            "brams": self.mcu_brams,
            "brams_pct": 100.0 * self.mcu_brams / self.base_brams,
            "dsps": self.mcu_dsps,
            "dsps_pct": 100.0 * self.mcu_dsps / self.base_dsps,
        }
