"""TCB size accounting (the Table III "Lines of code" row).

The paper argues TCB size is a first-class security metric: "The lines
of code (LoC) for GuardNN prototype is 21.8k in total — 9k LoC for the
baseline accelerator, 8.3k LoC for the customized protection, and 4.5k
LoC for new instructions (firmware on a microcontroller)."

This module measures the same decomposition for *this repository*: which
of our packages would sit inside the trusted boundary of a real device
(the device model, protection machinery, crypto primitives) versus the
untrusted/tooling majority (host software, performance models, analysis,
tests). The point the numbers make is the paper's point: the trusted
part is a small, auditable fraction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: repository-relative module -> TCB category (None = untrusted/tooling)
TCB_MAP: Dict[str, str] = {
    "crypto": "crypto primitives (HW crypto blocks + firmware crypto)",
    "protection": "memory protection (Enc/IV engines, counters)",
    "core/mpu.py": "memory protection (Enc/IV engines, counters)",
    "core/device.py": "device control (microcontroller firmware)",
    "core/isa.py": "device control (microcontroller firmware)",
    "core/attestation.py": "device control (microcontroller firmware)",
    "core/channel.py": "device control (microcontroller firmware)",
    "core/compute.py": "base accelerator (PE array + vector unit)",
}

UNTRUSTED = [
    "accel", "mem", "analysis", "workloads", "cli.py", "__main__.py",
    "core/host.py", "core/session.py", "core/compiler.py", "core/errors.py",
    "core/__init__.py",
]


def count_loc(path: str) -> int:
    """Non-blank, non-comment-only lines of one Python file."""
    total = 0
    with open(path) as f:
        for line in f:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


def _walk_py(root: str) -> Iterable[str]:
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


@dataclass
class TcbReport:
    """LoC per TCB category plus the untrusted remainder."""

    categories: Dict[str, int]
    untrusted_loc: int

    @property
    def tcb_loc(self) -> int:
        return sum(self.categories.values())

    @property
    def total_loc(self) -> int:
        return self.tcb_loc + self.untrusted_loc

    @property
    def tcb_fraction(self) -> float:
        return self.tcb_loc / self.total_loc if self.total_loc else 0.0


def measure_tcb(package_root: str = None) -> TcbReport:
    """Classify every source line of the ``repro`` package."""
    if package_root is None:
        import repro

        package_root = os.path.dirname(repro.__file__)
    categories: Dict[str, int] = {}
    untrusted = 0
    for path in _walk_py(package_root):
        rel = os.path.relpath(path, package_root).replace(os.sep, "/")
        loc = count_loc(path)
        category = None
        for prefix, label in TCB_MAP.items():
            if rel == prefix or rel.startswith(prefix + "/") or rel.startswith(prefix):
                category = label
                break
        if category is None:
            untrusted += loc
        else:
            categories[category] = categories.get(category, 0) + loc
    return TcbReport(categories=categories, untrusted_loc=untrusted)
