"""Energy-efficiency model: GOPs and GOPs/W for Table III.

Throughput in Table III is "giga operations per second" counting each
MAC as 2 ops (the usual convention); power combines the accelerator's
estimated draw with the AES engines' contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.accelerator import RunResult
from repro.accel.models import NetworkModel
from repro.analysis.area import AsicAreaModel


@dataclass(frozen=True)
class EnergyModel:
    """Maps a simulated run to the Table III metrics."""

    accelerator_power_w: float

    def ops(self, network: NetworkModel, batch: int = 1) -> float:
        return 2.0 * network.macs(batch)

    def throughput_gops(self, network: NetworkModel, result: RunResult) -> float:
        if result.seconds <= 0:
            return 0.0
        return self.ops(network, result.batch) / result.seconds / 1e9

    def total_power_w(self, aes_engines: int = 0,
                      area_model: AsicAreaModel = None) -> float:
        power = self.accelerator_power_w
        if aes_engines and area_model is not None:
            power += area_model.overhead(aes_engines)["power_w"]
        return power

    def efficiency_gops_per_w(self, network: NetworkModel, result: RunResult,
                              power_w: float = None) -> float:
        power = power_w if power_w is not None else self.accelerator_power_w
        if power <= 0:
            return 0.0
        return self.throughput_gops(network, result) / power
