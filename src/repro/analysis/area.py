"""ASIC area/power overhead model (Section III-C).

The paper's arithmetic: a 28nm low-power AES engine (Shan et al., VLSI
2019) is 0.0031 mm^2 / 3.85 mW / 991 Mbps at 875 MHz; TPU-v1 (28nm) is
331 mm^2 / 75 W with 272 Gbps peak memory bandwidth. Matching the
bandwidth takes ceil(272/0.991) = 275... the paper says 344 engines
(they derate the engine to its sustained rate); either way the overhead
is fractions of a percent. We expose the model so the bench can sweep
engine counts and AES-core variants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class AesCoreSpec:
    """One published AES core operating point."""

    name: str
    area_mm2: float
    power_mw: float
    throughput_gbps: float
    freq_mhz: float


#: Shan et al., VLSI 2019 (28nm, 2-Sbox energy-efficient core)
AES_CORE_28NM = AesCoreSpec(
    name="shan-vlsi19-28nm",
    area_mm2=0.0031,
    power_mw=3.85,
    throughput_gbps=0.991,
    freq_mhz=875.0,
)


@dataclass(frozen=True)
class AcceleratorAreaSpec:
    """The host accelerator the engines are added to."""

    name: str
    area_mm2: float
    power_w: float
    mem_bandwidth_gbps: float


#: TPU-v1, 28nm (Jouppi et al., ISCA 2017)
TPU_V1_AREA = AcceleratorAreaSpec(
    name="tpu-v1",
    area_mm2=331.0,
    power_w=75.0,
    mem_bandwidth_gbps=272.0,
)


class AsicAreaModel:
    """Computes how many AES engines a bandwidth target needs and the
    resulting area/power overhead."""

    def __init__(self, core: AesCoreSpec = AES_CORE_28NM,
                 accelerator: AcceleratorAreaSpec = TPU_V1_AREA,
                 derate: float = 0.8):
        """``derate``: sustained/peak throughput ratio of one engine
        (covers pipeline bubbles and key-switch overhead; the paper's 344
        engines correspond to ~0.8 derating of the 991 Mbps core)."""
        if not 0 < derate <= 1:
            raise ValueError("derate must be in (0, 1]")
        self.core = core
        self.accelerator = accelerator
        self.derate = derate

    def engines_needed(self) -> int:
        sustained = self.core.throughput_gbps * self.derate
        return math.ceil(self.accelerator.mem_bandwidth_gbps / sustained)

    def overhead(self, engines: int = None) -> Dict[str, float]:
        """Area/power overhead of ``engines`` AES cores (default: enough
        to match the accelerator's memory bandwidth)."""
        n = engines if engines is not None else self.engines_needed()
        area = n * self.core.area_mm2
        power_w = n * self.core.power_mw / 1e3
        return {
            "engines": n,
            "area_mm2": area,
            "area_pct": 100.0 * area / self.accelerator.area_mm2,
            "power_w": power_w,
            "power_pct": 100.0 * power_w / self.accelerator.power_w,
        }
