"""Merkle tree (the baseline's replay protection)."""

import pytest

from repro.protection.merkle import MerkleTree


class TestBasics:
    def test_root_changes_on_update(self):
        tree = MerkleTree(8)
        before = tree.root
        tree.update_leaf(3, b"mac-3")
        assert tree.root != before

    def test_verify_accepts_current_leaf(self):
        tree = MerkleTree(8)
        tree.update_leaf(2, b"mac-2")
        proof = tree.proof(2)
        assert tree.verify_leaf(2, b"mac-2", proof)

    def test_verify_rejects_tampered_leaf(self):
        tree = MerkleTree(8)
        tree.update_leaf(2, b"mac-2")
        proof = tree.proof(2)
        assert not tree.verify_leaf(2, b"mac-2-forged", proof)

    def test_verify_rejects_wrong_index(self):
        tree = MerkleTree(8)
        tree.update_leaf(2, b"mac-2")
        assert not tree.verify_leaf(3, b"mac-2", tree.proof(2))

    def test_replay_of_stale_leaf_detected(self):
        """The replay attack BP's tree exists to stop: record (leaf,
        proof), update the leaf, then replay the stale pair."""
        tree = MerkleTree(8)
        tree.update_leaf(5, b"version-1")
        stale_proof = tree.proof(5)
        tree.update_leaf(5, b"version-2")
        assert not tree.verify_leaf(5, b"version-1", stale_proof)

    def test_all_leaves_independent(self):
        tree = MerkleTree(4)
        for i in range(4):
            tree.update_leaf(i, f"leaf-{i}".encode())
        for i in range(4):
            assert tree.verify_leaf(i, f"leaf-{i}".encode(), tree.proof(i))

    def test_non_power_of_two_leaves(self):
        tree = MerkleTree(5)
        tree.update_leaf(4, b"x")
        assert tree.verify_leaf(4, b"x", tree.proof(4))

    def test_single_leaf_tree(self):
        tree = MerkleTree(1)
        tree.update_leaf(0, b"only")
        assert tree.verify_leaf(0, b"only", tree.proof(0))

    def test_bounds(self):
        tree = MerkleTree(4)
        with pytest.raises(IndexError):
            tree.update_leaf(4, b"x")
        with pytest.raises(IndexError):
            tree.proof(-1)
        assert not tree.verify_leaf(9, b"x", [])

    def test_wrong_proof_length_rejected(self):
        tree = MerkleTree(8)
        tree.update_leaf(0, b"x")
        assert not tree.verify_leaf(0, b"x", tree.proof(0)[:-1])

    def test_rejects_empty_tree(self):
        with pytest.raises(ValueError):
            MerkleTree(0)
