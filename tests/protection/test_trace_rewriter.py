"""Event-driven trace rewriters (mechanistic metadata streams)."""

import pytest

from repro.mem.trace import MemoryRequest, RequestKind, TraceStats
from repro.protection.guardnn import GuardNNParams
from repro.protection.mee import MeeParams
from repro.protection.trace_rewriter import GuardNNTraceRewriter, MeeTraceRewriter
from repro.workloads.generators import streaming_trace


def _stats(trace):
    stats = TraceStats()
    for req in trace:
        stats.add(req)
    return stats


class TestGuardNNRewriter:
    def test_c_mode_identity(self):
        trace = streaming_trace(1 << 14)
        out = GuardNNTraceRewriter(integrity=False).rewrite(trace)
        assert out == trace

    def test_ci_mode_mac_ratio(self):
        """Amortized, MAC-line transfers cost exactly mac_bytes per
        chunk of data: 12/512 = 2.34% for a pure read stream."""
        trace = streaming_trace(1 << 16, write_fraction=0.0)
        rewriter = GuardNNTraceRewriter(integrity=True)
        out = rewriter.rewrite(trace) + rewriter.flush()
        stats = _stats(out)
        ratio = stats.kind_bytes(RequestKind.MAC) / stats.data_bytes
        assert ratio == pytest.approx(12 / 512, rel=0.05)

    def test_one_mac_line_per_chunk_group(self):
        """Eight consecutive 64-B bursts in one 512-B chunk share one
        MAC-line transfer (the engine keeps the active line)."""
        trace = [MemoryRequest(i * 64, 64, False) for i in range(8)]
        out = GuardNNTraceRewriter(integrity=True).rewrite(trace)
        macs = [r for r in out if r.kind is RequestKind.MAC]
        assert len(macs) == 1

    def test_dirty_mac_line_written_back_without_fill(self):
        """Streaming writes produce fresh tags: the line is
        write-allocated (no fill read) and streams back out dirty."""
        trace = [MemoryRequest(0, 512, True)]
        rewriter = GuardNNTraceRewriter(integrity=True)
        out = rewriter.rewrite(trace) + rewriter.flush()
        macs = [r for r in out if r.kind is RequestKind.MAC]
        assert len(macs) == 1
        assert macs[0].is_write

    def test_chunk_straddling_request_shares_line(self):
        trace = [MemoryRequest(448, 128, False)]  # chunks 0 and 1
        out = GuardNNTraceRewriter(integrity=True).rewrite(trace)
        macs = [r for r in out if r.kind is RequestKind.MAC]
        assert len(macs) == 1  # both chunks' tags live in MAC line 0


class TestMeeRewriter:
    def test_streaming_traffic_increase_in_range(self):
        """The mechanistic BP model lands in the same band as the
        analytic one (and the paper): ~25-55% extra for streaming."""
        rewriter = MeeTraceRewriter()
        trace = streaming_trace(1 << 20, write_fraction=0.3)
        out = rewriter.rewrite(trace) + rewriter.flush()
        stats = _stats(out)
        increase = stats.metadata_bytes / stats.data_bytes
        assert 0.15 < increase < 0.60

    def test_metadata_kinds_present(self):
        rewriter = MeeTraceRewriter()
        out = rewriter.rewrite(streaming_trace(1 << 18, write_fraction=0.5))
        kinds = {r.kind for r in out}
        assert RequestKind.VN in kinds
        assert RequestKind.MAC in kinds
        assert RequestKind.TREE in kinds

    def test_cache_reuse_within_hot_region(self):
        """Re-streaming a region whose metadata fits in the cache emits
        metadata only on the first pass."""
        rewriter = MeeTraceRewriter()
        small = streaming_trace(1 << 13, write_fraction=0.0)  # 8 KB
        first = rewriter.rewrite(small)
        second = rewriter.rewrite(small)
        assert _stats(second).metadata_bytes < _stats(first).metadata_bytes / 4

    def test_writes_produce_dirty_writebacks(self):
        rewriter = MeeTraceRewriter(MeeParams(cache_bytes=4096))
        big_writes = streaming_trace(1 << 19, write_fraction=1.0)
        out = rewriter.rewrite(big_writes) + rewriter.flush()
        wb = [r for r in out if r.kind.is_metadata() and r.is_write]
        assert wb, "streaming writes must evict dirty metadata lines"

    def test_guardnn_far_below_mee(self):
        trace = streaming_trace(1 << 19, write_fraction=0.3)
        mee = MeeTraceRewriter()
        mee_out = mee.rewrite(trace) + mee.flush()
        gnn_out = GuardNNTraceRewriter(integrity=True).rewrite(trace)
        mee_meta = _stats(mee_out).metadata_bytes
        gnn_meta = _stats(gnn_out).metadata_bytes
        assert mee_meta > 5 * gnn_meta

    def test_tree_levels_laid_out(self):
        rewriter = MeeTraceRewriter(protected_bytes=1 << 30)
        assert len(rewriter.regions.tree_bases) >= 5  # 8-ary over 1 GB
