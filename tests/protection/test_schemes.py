"""Timing/traffic contracts of NP / GuardNN / BP."""

import pytest

from repro.accel.scheduler import LayerTraffic
from repro.mem.trace import RequestKind
from repro.protection.engine import AesEngineModel
from repro.protection.guardnn import GuardNNParams, GuardNNProtection
from repro.protection.mee import BaselineMEE, MeeParams
from repro.protection.none import NoProtection


def make_traffic(weight=1 << 20, inp=1 << 20, out=1 << 20, passes=1):
    return LayerTraffic(
        layer_name="L",
        weight_reads=weight,
        input_reads=inp,
        output_writes=out,
        weight_size=weight,
        input_size=inp,
        output_size=out,
        input_passes=passes,
    )


class TestNoProtection:
    def test_zero_everything(self):
        overhead = NoProtection().layer_overhead(make_traffic(), "forward", False)
        assert overhead.total_bytes == 0
        assert overhead.fixed_cycles == 0
        assert NoProtection().engine is None


class TestGuardNN:
    def test_c_mode_zero_metadata(self):
        scheme = GuardNNProtection(integrity=False)
        overhead = scheme.layer_overhead(make_traffic(), "forward", False)
        assert overhead.total_bytes == 0
        assert scheme.provides_confidentiality and not scheme.provides_integrity

    def test_ci_mode_mac_ratio(self):
        """12-B MAC per 512-B chunk = 2.34% of data traffic."""
        scheme = GuardNNProtection(integrity=True)
        t = make_traffic()
        overhead = scheme.layer_overhead(t, "forward", False)
        ratio = overhead.total_bytes / t.total_bytes
        assert ratio == pytest.approx(12 / 512, rel=0.01)

    def test_ci_metadata_is_all_mac(self):
        overhead = GuardNNProtection(integrity=True).layer_overhead(
            make_traffic(), "forward", False
        )
        assert set(overhead.breakdown) == {RequestKind.MAC}

    def test_mac_direction_follows_data(self):
        scheme = GuardNNProtection(integrity=True)
        t = make_traffic(weight=0, inp=0, out=1 << 20)
        overhead = scheme.layer_overhead(t, "forward", False)
        assert overhead.extra_read_bytes == 0
        assert overhead.extra_write_bytes > 0

    def test_custom_granularity(self):
        params = GuardNNParams(chunk_bytes=4096, mac_bytes=16)
        scheme = GuardNNProtection(integrity=True, params=params)
        t = make_traffic()
        overhead = scheme.layer_overhead(t, "forward", False)
        assert overhead.total_bytes / t.total_bytes == pytest.approx(16 / 4096, rel=0.01)

    def test_names(self):
        assert GuardNNProtection(integrity=False).name == "GuardNN_C"
        assert GuardNNProtection(integrity=True).name == "GuardNN_CI"


class TestBaselineMEE:
    def test_streaming_overhead_in_paper_range(self):
        """Large streamed layers: BP adds ~25-45% traffic (paper: 35.3%
        average for inference)."""
        scheme = BaselineMEE()
        t = make_traffic(weight=64 << 20, inp=8 << 20, out=8 << 20)
        overhead = scheme.layer_overhead(t, "forward", False)
        ratio = overhead.total_bytes / t.total_bytes
        assert 0.20 < ratio < 0.50

    def test_has_vn_mac_and_tree_components(self):
        overhead = BaselineMEE().layer_overhead(make_traffic(), "forward", False)
        assert overhead.breakdown[RequestKind.VN] > 0
        assert overhead.breakdown[RequestKind.MAC] > 0
        assert overhead.breakdown[RequestKind.TREE] > 0

    def test_small_layer_metadata_cached(self):
        """A tiny layer's metadata fits in the VN/MAC cache: one miss
        pass only, so multi-pass streams pay once."""
        scheme = BaselineMEE()
        small_multi = scheme.layer_overhead(make_traffic(weight=1 << 14, inp=1 << 14,
                                                         out=1 << 14, passes=4),
                                            "forward", False)
        small_single = scheme.layer_overhead(make_traffic(weight=1 << 14, inp=1 << 14,
                                                          out=1 << 14, passes=1),
                                             "forward", False)
        assert small_multi.total_bytes == small_single.total_bytes

    def test_large_layer_pays_per_pass(self):
        scheme = BaselineMEE()
        one = scheme.layer_overhead(make_traffic(passes=1), "forward", False)
        four = scheme.layer_overhead(
            make_traffic(inp=4 << 20, passes=4), "forward", False
        )
        assert four.total_bytes > one.total_bytes

    def test_writes_cost_more_than_reads(self):
        """RMW on VN/MAC lines: write streams carry ~2x the metadata of
        read streams — why training hurts more (Section III-C)."""
        scheme = BaselineMEE()
        reads = scheme.layer_overhead(make_traffic(weight=0, inp=1 << 22, out=0),
                                      "forward", False)
        writes = scheme.layer_overhead(make_traffic(weight=0, inp=0, out=1 << 22),
                                       "forward", False)
        assert writes.total_bytes > 1.5 * reads.total_bytes

    def test_guardnn_far_cheaper_than_bp(self):
        t = make_traffic()
        bp = BaselineMEE().layer_overhead(t, "forward", False)
        ci = GuardNNProtection(integrity=True).layer_overhead(t, "forward", False)
        assert bp.total_bytes > 5 * ci.total_bytes


class TestEngineModel:
    def test_throughput(self):
        engine = AesEngineModel(engines=3)
        assert engine.bytes_per_cycle(200.0) == 48
        assert engine.throughput_gbps(200.0) == pytest.approx(9.6)

    def test_engines_to_match_bandwidth(self):
        n = AesEngineModel.engines_to_match_bandwidth(34.0, 700.0)
        assert n == 4  # 16 B * 700 MHz = 11.2 GB/s per engine -> ceil(34/11.2)

    def test_rejects_zero_engines(self):
        with pytest.raises(ValueError):
            AesEngineModel(engines=0)
