"""GuardNN's on-chip counters and VN packing."""

import pytest

from repro.protection.counters import (
    CounterState,
    DOMAIN_FEATURE,
    DOMAIN_INPUT,
    DOMAIN_WEIGHT,
    VersionNumber,
)


class TestVersionNumber:
    def test_domains_disjoint(self):
        f = VersionNumber.for_feature(1, 1)
        w = VersionNumber.for_weight(1)
        i = VersionNumber.for_input(1)
        assert len({f.value, w.value, i.value}) == 3
        assert f.domain == DOMAIN_FEATURE
        assert w.domain == DOMAIN_WEIGHT
        assert i.domain == DOMAIN_INPUT

    def test_feature_packing_injective(self):
        seen = set()
        for ctr_in in range(4):
            for ctr_fw in range(4):
                seen.add(VersionNumber.for_feature(ctr_in, ctr_fw).value)
        assert len(seen) == 16

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            VersionNumber.for_feature(1 << 24, 0)
        with pytest.raises(ValueError):
            VersionNumber.for_feature(0, 1 << 32)
        with pytest.raises(ValueError):
            VersionNumber.for_weight(1 << 56)
        with pytest.raises(ValueError):
            VersionNumber.for_input(1 << 24)

    def test_fits_64_bits(self):
        vn = VersionNumber.for_feature((1 << 24) - 1, (1 << 32) - 1)
        assert vn.value < (1 << 64)


class TestCounterTransitions:
    def test_set_input_resets_fw(self):
        state = CounterState()
        state.on_set_input()
        state.next_forward_vn()
        state.next_forward_vn()
        assert state.ctr_fw == 2
        state.on_set_input()
        assert state.ctr_in == 2
        assert state.ctr_fw == 0

    def test_forward_vns_strictly_increase(self):
        state = CounterState()
        state.on_set_input()
        vns = [state.next_forward_vn().value for _ in range(10)]
        assert vns == sorted(set(vns))

    def test_init_session_resets_everything(self):
        state = CounterState()
        state.on_set_input()
        state.on_set_weight()
        state.next_forward_vn()
        state.set_read_ctr(0, 512, 1)
        state.on_init_session()
        assert (state.ctr_in, state.ctr_fw, state.ctr_w) == (0, 0, 0)
        # read table cleared: default read VN is the current write VN
        assert state.read_vn_for(0) == state.feature_write_vn()

    def test_weight_counter(self):
        state = CounterState()
        state.on_set_weight()
        v1 = state.weight_vn()
        state.on_set_weight()
        assert state.weight_vn().value > v1.value


class TestReadCtrTable:
    def test_range_lookup(self):
        state = CounterState()
        state.on_set_input()
        state.set_read_ctr(1024, 512, ctr_fw=3)
        vn = state.read_vn_for(1200)
        assert vn == VersionNumber.for_feature(1, 3)

    def test_outside_range_uses_current(self):
        state = CounterState()
        state.on_set_input()
        state.set_read_ctr(1024, 512, ctr_fw=3)
        assert state.read_vn_for(4096) == state.feature_write_vn()

    def test_later_setting_wins(self):
        state = CounterState()
        state.on_set_input()
        state.set_read_ctr(0, 512, ctr_fw=1)
        state.set_read_ctr(0, 512, ctr_fw=2)
        assert state.read_vn_for(0) == VersionNumber.for_feature(1, 2)

    def test_explicit_ctr_in(self):
        state = CounterState()
        state.on_set_input()
        state.on_set_input()
        state.set_read_ctr(0, 512, ctr_fw=5, ctr_in=1)
        assert state.read_vn_for(0) == VersionNumber.for_feature(1, 5)

    def test_invalid_ranges(self):
        state = CounterState()
        with pytest.raises(ValueError):
            state.set_read_ctr(0, 0, 1)
        with pytest.raises(ValueError):
            state.set_read_ctr(0, 512, -1)

    def test_overlapping_ranges_latest_wins(self):
        """Regression: re-declaring a range after a wider overlapping
        declaration must still win (a range-keyed dict let the older,
        differently-sized range shadow the newer one)."""
        state = CounterState()
        state.on_set_input()
        state.set_read_ctr(0, 256, ctr_fw=1)  # narrow
        state.set_read_ctr(0, 512, ctr_fw=1)  # wide
        state.set_read_ctr(0, 256, ctr_fw=2)  # narrow again, newest
        assert state.read_vn_for(0) == VersionNumber.for_feature(1, 2)
        # addresses only covered by the wide range still see fw=1
        assert state.read_vn_for(300) == VersionNumber.for_feature(1, 1)

    def test_table_bounded(self):
        """The on-chip table holds at most 64 declarations (CAM-sized)."""
        state = CounterState()
        state.on_set_input()
        for i in range(100):
            state.set_read_ctr(i * 512, 512, ctr_fw=i)
        assert len(state._read_ctrs) == 64
        # oldest entries dropped: address 0 falls back to current VN
        assert state.read_vn_for(0) == state.feature_write_vn()
