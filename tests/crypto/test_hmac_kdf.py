"""HMAC-SHA256 (RFC 4231) and HKDF (RFC 5869) test vectors."""

import pytest

from repro.crypto.hmac import hmac_sha256, hmac_verify
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract


RFC4231 = [
    # (key, data, tag)
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"),
    (b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"),
]


@pytest.mark.parametrize("key,data,tag_hex", RFC4231)
def test_rfc4231(key, data, tag_hex):
    assert hmac_sha256(key, data).hex() == tag_hex


class TestVerify:
    def test_accepts_valid(self):
        tag = hmac_sha256(b"k", b"m")
        assert hmac_verify(b"k", b"m", tag)

    def test_rejects_flipped_bit(self):
        tag = bytearray(hmac_sha256(b"k", b"m"))
        tag[0] ^= 1
        assert not hmac_verify(b"k", b"m", bytes(tag))

    def test_rejects_wrong_length(self):
        tag = hmac_sha256(b"k", b"m")
        assert not hmac_verify(b"k", b"m", tag[:16])


class TestHkdfRfc5869:
    def test_case_1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_empty_salt_info(self):
        ikm = b"\x0b" * 22
        okm = hkdf(ikm, b"", b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_output_length_limit(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_distinct_infos_separate_keys(self):
        prk = hkdf_extract(b"salt", b"secret")
        assert hkdf_expand(prk, b"a", 16) != hkdf_expand(prk, b"b", 16)
