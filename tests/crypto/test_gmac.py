"""GMAC against NIST GCM known-answer vectors (tag-only cases)."""

import pytest

from repro.crypto.gmac import AesGmac


class TestNistVectors:
    def test_gcm_test_case_1_empty(self):
        """Key 0, IV 0^96, no data: tag = AES_K(J0) xor GHASH(lengths=0)
        = 58e2fccefa7e3061367f1d57a4e7455a."""
        gmac = AesGmac(bytes(16))
        tag = gmac.mac(bytes(12), b"")
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_gcm_test_case_2_tag(self):
        """Key 0, IV 0^96, ciphertext = one GCM-encrypted zero block
        (0388dace60b6a392f328c2b971b2fe78): tag =
        ab6e47d42cec13bdf53a67b21257bddf."""
        gmac = AesGmac(bytes(16))
        ciphertext = bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        tag = gmac.mac(bytes(12), ciphertext)
        assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"


class TestBehaviour:
    KEY = bytes(range(16))
    IV = bytes(12)

    def test_verify_round_trip(self):
        gmac = AesGmac(self.KEY)
        tag = gmac.mac(self.IV, b"chunk data", aad=b"address|vn")
        assert gmac.verify(self.IV, b"chunk data", tag, aad=b"address|vn")

    def test_rejects_modified_data(self):
        gmac = AesGmac(self.KEY)
        tag = gmac.mac(self.IV, b"chunk data")
        assert not gmac.verify(self.IV, b"chunk datA", tag)

    def test_rejects_modified_aad(self):
        gmac = AesGmac(self.KEY)
        tag = gmac.mac(self.IV, b"chunk", aad=b"addr=1")
        assert not gmac.verify(self.IV, b"chunk", tag, aad=b"addr=2")

    def test_iv_separates_tags(self):
        gmac = AesGmac(self.KEY)
        t1 = gmac.mac(bytes(12), b"x")
        t2 = gmac.mac(bytes(11) + b"\x01", b"x")
        assert t1 != t2

    def test_rejects_bad_iv_length(self):
        with pytest.raises(ValueError):
            AesGmac(self.KEY).mac(bytes(16), b"x")

    def test_rejects_wrong_tag_length(self):
        gmac = AesGmac(self.KEY)
        tag = gmac.mac(self.IV, b"x")
        assert not gmac.verify(self.IV, b"x", tag[:8])

    def test_aad_and_data_domains_separate(self):
        """Moving bytes between AAD and data must change the tag (the
        lengths block separates the domains)."""
        gmac = AesGmac(self.KEY)
        t1 = gmac.mac(self.IV, b"AB", aad=b"")
        t2 = gmac.mac(self.IV, b"", aad=b"AB")
        assert t1 != t2
