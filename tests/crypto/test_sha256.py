"""SHA-256 against FIPS 180-4 vectors plus incremental-interface checks."""

import pytest

from repro.crypto.sha256 import Sha256, sha256

VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (b"a" * 1_000_000, "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("message,digest_hex", VECTORS)
def test_known_answers(message, digest_hex):
    assert sha256(message).hex() == digest_hex


class TestIncremental:
    def test_chunked_equals_oneshot(self):
        message = bytes(range(256)) * 5
        h = Sha256()
        for i in range(0, len(message), 37):
            h.update(message[i : i + 37])
        assert h.digest() == sha256(message)

    def test_digest_does_not_finalize(self):
        """The attestation engine samples the running hash (SignOutput)
        and keeps absorbing — digest() must not disturb the state."""
        h = Sha256(b"part one")
        mid = h.digest()
        assert mid == sha256(b"part one")
        h.update(b" part two")
        assert h.digest() == sha256(b"part one part two")

    def test_copy_is_independent(self):
        h = Sha256(b"shared prefix")
        clone = h.copy()
        h.update(b"A")
        clone.update(b"B")
        assert h.digest() == sha256(b"shared prefixA")
        assert clone.digest() == sha256(b"shared prefixB")

    def test_boundary_lengths(self):
        # pad-boundary cases: 55, 56, 63, 64, 65 bytes
        for n in (55, 56, 63, 64, 65):
            message = bytes([0xAB]) * n
            assert sha256(message) == Sha256(message).digest()

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == VECTORS[1][1]
