"""Consolidated NIST/RFC known-answer suite for the crypto stack.

Complements the per-primitive test files with the official vectors they
do not already cover: FIPS-197 Appendix B, the full four-block
SP 800-38A ECB/CTR sets, the GCM-spec AES-128 test cases 3-4 (GMAC over
GCM ciphertext, with and without AAD), RFC 4231 cases 4/5/7 (including
the 128-bit truncated-tag case), and the FIPS 180-4 two-block SHA-256
message. One failing vector here identifies the broken primitive
directly, independent of any protocol machinery above it.
"""

import pytest

from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr
from repro.crypto.gmac import AesGmac
from repro.crypto.hmac import hmac_sha256
from repro.crypto.sha256 import sha256
from repro.crypto.sha256_fast import hmac_sha256_many, sha256_many


class TestAes128Fips197:
    def test_appendix_b_cipher_example(self):
        """FIPS-197 Appendix B: the worked 128-bit cipher example."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected
        assert AES128(key).decrypt_block(expected) == plaintext


# SP 800-38A F.1.1/F.1.2 ECB-AES128: all four blocks
SP800_38A_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP800_38A_ECB = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]


class TestAes128Sp800_38aEcb:
    @pytest.mark.parametrize("pt_hex,ct_hex", SP800_38A_ECB)
    def test_encrypt(self, pt_hex, ct_hex):
        aes = AES128(SP800_38A_KEY)
        assert aes.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex

    @pytest.mark.parametrize("pt_hex,ct_hex", SP800_38A_ECB)
    def test_decrypt(self, pt_hex, ct_hex):
        aes = AES128(SP800_38A_KEY)
        assert aes.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex


# SP 800-38A F.5.1 CTR-AES128: per-block pairs under the incrementing
# counter f0f1...ff (the file-wide four-block stream is covered in
# test_ctr.py; here each block is checked at its own counter offset)
SP800_38A_CTR = [
    ("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff",
     "6bc1bee22e409f96e93d7e117393172a", "874d6191b620e3261bef6864990db6ce"),
    ("f0f1f2f3f4f5f6f7f8f9fafbfcfdff00",
     "ae2d8a571e03ac9c9eb76fac45af8e51", "9806f66b7970fdff8617187bb9fffdff"),
    ("f0f1f2f3f4f5f6f7f8f9fafbfcfdff01",
     "30c81c46a35ce411e5fbc1191a0a52ef", "5ae4df3edbd5d35e5b4f09020db03eab"),
    ("f0f1f2f3f4f5f6f7f8f9fafbfcfdff02",
     "f69f2445df4f9b17ad2b417be66c3710", "1e031dda2fbe03d1792170a0f3009cee"),
]


class TestAesCtrSp800_38a:
    @pytest.mark.parametrize("counter_hex,pt_hex,ct_hex", SP800_38A_CTR)
    def test_single_block_encrypt(self, counter_hex, pt_hex, ct_hex):
        ctr = AesCtr(SP800_38A_KEY)
        out = ctr.crypt(bytes.fromhex(counter_hex), bytes.fromhex(pt_hex))
        assert out.hex() == ct_hex

    @pytest.mark.parametrize("counter_hex,pt_hex,ct_hex", SP800_38A_CTR)
    def test_single_block_decrypt(self, counter_hex, pt_hex, ct_hex):
        ctr = AesCtr(SP800_38A_KEY)
        out = ctr.crypt(bytes.fromhex(counter_hex), bytes.fromhex(ct_hex))
        assert out.hex() == pt_hex


# GCM spec / SP 800-38D AES-128 test cases 3 and 4: GMAC over the
# published GCM *ciphertext* reproduces the published tag
GCM_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
GCM_IV = bytes.fromhex("cafebabefacedbaddecaf888")
GCM_CT_CASE3 = bytes.fromhex(
    "42831ec2217774244b7221b784d0d49c"
    "e3aa212f2c02a4e035c17e2329aca12e"
    "21d514b25466931c7d8f6a5aac84aa05"
    "1ba30b396a0aac973d58e091473f5985"
)
GCM_AAD_CASE4 = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestGmacGcmSpec:
    def test_case_3_no_aad(self):
        tag = AesGmac(GCM_KEY).mac(GCM_IV, GCM_CT_CASE3)
        assert tag.hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        # case 4 trims the plaintext (and so the ciphertext) to 60 bytes
        tag = AesGmac(GCM_KEY).mac(GCM_IV, GCM_CT_CASE3[:60], aad=GCM_AAD_CASE4)
        assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_aad_only_message(self):
        """GMAC proper: authenticate AAD with no ciphertext at all, and
        verify() accepts exactly that tag."""
        gmac = AesGmac(GCM_KEY)
        tag = gmac.mac(GCM_IV, b"", aad=GCM_AAD_CASE4)
        assert gmac.verify(GCM_IV, b"", tag, aad=GCM_AAD_CASE4)
        assert not gmac.verify(GCM_IV, b"", tag)


class TestHmacSha256Rfc4231:
    def test_case_4(self):
        key = bytes(range(0x01, 0x1A))
        tag = hmac_sha256(key, b"\xcd" * 50)
        assert tag.hex() == ("82558a389a443c0ea4cc819899f2083a"
                             "85f0faa3e578f8077a2e3ff46729665b")

    def test_case_5_truncated(self):
        key = b"\x0c" * 20
        tag = hmac_sha256(key, b"Test With Truncation")
        assert tag[:16].hex() == "a3b6167473100ee06e0c796c2955552b"

    def test_case_7_large_key_and_data(self):
        key = b"\xaa" * 131
        data = (b"This is a test using a larger than block-size key and a "
                b"larger than block-size data. The key needs to be hashed "
                b"before being used by the HMAC algorithm.")
        tag = hmac_sha256(key, data)
        assert tag.hex() == ("9b09ffa71b942fcb27635fbcd5b0e944"
                             "bfdc63644f0713938a7f51535c3a35e2")


class TestSha256Fips180_4:
    def test_two_block_message(self):
        message = (b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                   b"hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")
        assert sha256(message).hex() == ("cf5b16a778af8380036ce59e7b049237"
                                         "0b249b11e8f07a51afac45037afee9d1")

    def test_448_bit_boundary(self):
        # exactly one padding-boundary block (56 bytes)
        message = b"a" * 56
        assert sha256(message).hex() == ("b35439a4ac6f0948b6d6f9e3c6af0f5f"
                                         "590ce20f1bde7090ef7970686ec6738a")


# FIPS 180-4 / NIST SHAVS short-message vectors used both for the
# scalar reference and, in one ragged batch, for the lane-parallel
# kernel (sha256_fast): one-shot "abc", the empty message, the
# two-block SHAVS message, and the 448-bit padding boundary.
SHA256_KAT = [
    (b"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"",
     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
     b"hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
     "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"),
    (b"a" * 56,
     "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"),
]


class TestSha256LaneParallel:
    @pytest.mark.parametrize("message,digest_hex", SHA256_KAT)
    def test_official_vectors_one_lane_each(self, message, digest_hex):
        assert sha256_many([message])[0].hex() == digest_hex

    def test_official_vectors_as_one_ragged_batch(self):
        """All KAT messages in a single lane-parallel call: lanes have
        1-block and 2-block paddings side by side, so the ragged
        active-lane masking is exercised against official digests."""
        digests = sha256_many([message for message, _ in SHA256_KAT])
        assert [d.hex() for d in digests] == [hx for _, hx in SHA256_KAT]

    def test_padding_boundary_ladder_matches_scalar(self):
        """Every interesting FIPS padding shape in one batch: empty,
        one byte, the 55/56-byte one-to-two-block boundary, and the
        63/64/65-byte block edges (>55-byte tails force the length
        field into a second padding block)."""
        messages = [b"x" * n for n in (0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120)]
        assert sha256_many(messages) == [sha256(m) for m in messages]


class TestHmacBatchRfc4231:
    def test_case_4_through_batch_entry_point(self):
        key = bytes(range(0x01, 0x1A))
        messages = [b"\xcd" * 50, b"", b"other message"]
        tags = hmac_sha256_many(key, messages)
        assert tags[0].hex() == ("82558a389a443c0ea4cc819899f2083a"
                                 "85f0faa3e578f8077a2e3ff46729665b")
        assert tags == [hmac_sha256(key, m) for m in messages]

    def test_case_7_large_key_batch_matches_scalar(self):
        key = b"\xaa" * 131  # > block size: the key is hashed first
        canonical = (b"This is a test using a larger than block-size key and a "
                     b"larger than block-size data. The key needs to be hashed "
                     b"before being used by the HMAC algorithm.")
        messages = [canonical, b"", b"\xcd" * 50, b"a" * 64]
        tags = hmac_sha256_many(key, messages)
        assert tags[0].hex() == ("9b09ffa71b942fcb27635fbcd5b0e944"
                                 "bfdc63644f0713938a7f51535c3a35e2")
        assert tags == [hmac_sha256(key, m) for m in messages]
