"""AES-CMAC (RFC 4493) vectors and GF(2^128) algebra."""

import pytest

from repro.crypto.cmac import AesCmac, cmac
from repro.crypto.gf128 import gf128_mul, gf128_pow, ghash

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)

RFC4493 = [
    (0, "bb1d6929e95937287fa37d129b756746"),
    (16, "070a16b46b4d4144f79bdd9dd04a287c"),
    (40, "dfa66747de9ae63030ca32611497c827"),
    (64, "51f0bebf7e3b9d92fc49741779363cfe"),
]


@pytest.mark.parametrize("length,tag_hex", RFC4493)
def test_rfc4493_vectors(length, tag_hex):
    assert cmac(KEY, MSG[:length]).hex() == tag_hex


class TestCmacBehaviour:
    def test_verify_accepts_and_rejects(self):
        mac = AesCmac(KEY)
        tag = mac.mac(b"guardnn chunk")
        assert mac.verify(b"guardnn chunk", tag)
        assert not mac.verify(b"guardnn chunk!", tag)
        assert not mac.verify(b"guardnn chunk", tag[:-1] + bytes([tag[-1] ^ 1]))

    def test_reusable_across_messages(self):
        mac = AesCmac(KEY)
        tags = {mac.mac(bytes([i]) * 24) for i in range(16)}
        assert len(tags) == 16

    def test_key_separation(self):
        other = bytes(reversed(KEY))
        assert cmac(KEY, b"x") != cmac(other, b"x")


ONE = 1 << 127  # multiplicative identity in GHASH bit order


class TestGf128:
    def test_identity(self):
        for x in (1, 0xDEADBEEF << 64, (1 << 128) - 1):
            assert gf128_mul(ONE, x) == x

    def test_zero_annihilates(self):
        assert gf128_mul(0, 123456) == 0

    def test_commutative(self):
        a, b = 0x1234567890ABCDEF << 32, 0xFEDCBA0987654321
        assert gf128_mul(a, b) == gf128_mul(b, a)

    def test_associative(self):
        a, b, c = 3 << 100, 7 << 50, 11 << 20
        assert gf128_mul(gf128_mul(a, b), c) == gf128_mul(a, gf128_mul(b, c))

    def test_distributes_over_xor(self):
        a, b, c = 5 << 90, 9 << 60, 2 << 30
        assert gf128_mul(a, b ^ c) == gf128_mul(a, b) ^ gf128_mul(a, c)

    def test_pow_matches_repeated_mul(self):
        h = 0xAA55 << 64
        assert gf128_pow(h, 1) == h
        assert gf128_pow(h, 3) == gf128_mul(gf128_mul(h, h), h)
        assert gf128_pow(h, 0) == ONE

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            gf128_mul(1 << 128, 1)

    def test_ghash_linearity_in_blocks(self):
        """GHASH of (A || 0-block) = GHASH(A) * H  — the defining
        Horner recurrence."""
        h = 0x66E94BD4EF8A2C3B884CFA59CA342B2E  # any field element
        block = bytes(range(16))
        y1 = int.from_bytes(ghash(h, block), "big")
        y2 = int.from_bytes(ghash(h, block + bytes(16)), "big")
        assert y2 == gf128_mul(y1, h)
