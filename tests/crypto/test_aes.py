"""AES-128 against FIPS-197 and SP 800-38A known-answer vectors."""

import pytest

from repro.crypto.aes import AES128, _SBOX, _INV_SBOX


# FIPS-197 Appendix C.1
FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# SP 800-38A F.1.1 ECB-AES128 (first two blocks)
NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_BLOCKS = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]


class TestKnownAnswers:
    def test_fips197_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PT) == FIPS_CT

    def test_fips197_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CT) == FIPS_PT

    @pytest.mark.parametrize("pt_hex,ct_hex", NIST_BLOCKS)
    def test_sp800_38a_ecb_encrypt(self, pt_hex, ct_hex):
        aes = AES128(NIST_KEY)
        assert aes.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex

    @pytest.mark.parametrize("pt_hex,ct_hex", NIST_BLOCKS)
    def test_sp800_38a_ecb_decrypt(self, pt_hex, ct_hex):
        aes = AES128(NIST_KEY)
        assert aes.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex


class TestSbox:
    def test_sbox_spot_values(self):
        # canonical spot checks from the FIPS-197 table
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x53] == 0xED
        assert _SBOX[0xFF] == 0x16

    def test_sbox_is_permutation(self):
        assert sorted(_SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        assert all(_INV_SBOX[_SBOX[i]] == i for i in range(256))


class TestRoundTripAndErrors:
    def test_round_trip_many_keys(self):
        for seed in range(8):
            key = bytes([(seed * 17 + i) % 256 for i in range(16)])
            block = bytes([(seed * 31 + i * 7) % 256 for i in range(16)])
            aes = AES128(key)
            assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_different_keys_differ(self):
        block = bytes(16)
        a = AES128(bytes(16)).encrypt_block(block)
        b = AES128(bytes([1] + [0] * 15)).encrypt_block(block)
        assert a != b

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_bad_block_length_encrypt(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(b"tiny")

    def test_bad_block_length_decrypt(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).decrypt_block(bytes(17))
