"""AES-CTR: NIST vectors, involution, and the memory-encryption forms."""

import pytest

from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr, ctr_keystream, make_counter_block

NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_IC = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
# SP 800-38A F.5.1 CTR-AES128.Encrypt: 4 blocks
NIST_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
NIST_CT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)


class TestNistVectors:
    def test_ctr_encrypt_four_blocks(self):
        assert AesCtr(NIST_KEY).crypt(NIST_IC, NIST_PT) == NIST_CT

    def test_ctr_decrypt_is_involution(self):
        assert AesCtr(NIST_KEY).crypt(NIST_IC, NIST_CT) == NIST_PT

    def test_partial_block(self):
        out = AesCtr(NIST_KEY).crypt(NIST_IC, NIST_PT[:7])
        assert out == NIST_CT[:7]


class TestKeystream:
    def test_counter_wraps_modulo_2_128(self):
        aes = AES128(NIST_KEY)
        ic = bytes([0xFF] * 16)
        stream = ctr_keystream(aes, ic, 32)
        expected = aes.encrypt_block(ic) + aes.encrypt_block(bytes(16))
        assert stream == expected

    def test_bad_counter_length(self):
        with pytest.raises(ValueError):
            ctr_keystream(AES128(bytes(16)), b"short", 16)


class TestMemoryEncryptionForm:
    def test_counter_block_layout(self):
        block = make_counter_block(0x1122334455667788, 0x99AABBCCDDEEFF00)
        assert block == bytes.fromhex("112233445566778899aabbccddeeff00")

    def test_counter_block_bounds(self):
        with pytest.raises(ValueError):
            make_counter_block(1 << 64, 0)
        with pytest.raises(ValueError):
            make_counter_block(0, 1 << 64)

    def test_same_plaintext_different_addresses_differ(self):
        ctr = AesCtr(NIST_KEY)
        data = bytes(32)
        a = ctr.crypt_region(0, 5, data)
        b = ctr.crypt_region(100, 5, data)
        assert a != b
        # and even the two halves within one region differ
        assert a[:16] != a[16:]

    def test_same_address_different_vn_differ(self):
        ctr = AesCtr(NIST_KEY)
        data = bytes(16)
        assert ctr.crypt_block_with_counter(7, 1, data) != ctr.crypt_block_with_counter(7, 2, data)

    def test_region_round_trip(self):
        ctr = AesCtr(NIST_KEY)
        data = bytes(range(64))
        ct = ctr.crypt_region(12, 42, bytes(data))
        assert ctr.crypt_region(12, 42, ct) == data

    def test_region_wrong_vn_garbage(self):
        ctr = AesCtr(NIST_KEY)
        data = bytes(range(64))
        ct = ctr.crypt_region(12, 42, bytes(data))
        assert ctr.crypt_region(12, 43, ct) != data

    def test_region_requires_block_multiple(self):
        with pytest.raises(ValueError):
            AesCtr(NIST_KEY).crypt_region(0, 0, bytes(15))

    def test_block_form_requires_16_bytes(self):
        with pytest.raises(ValueError):
            AesCtr(NIST_KEY).crypt_block_with_counter(0, 0, bytes(8))
