"""P-256 group law: standard parameters, Jacobian/affine agreement,
encode/decode, and group axioms."""

import pytest

from repro.crypto.ec import (
    ECPoint,
    P256,
    base_mult,
    is_on_curve,
    point_add,
    point_double,
    scalar_mult,
)

G = ECPoint(P256.gx, P256.gy)


class TestParameters:
    def test_generator_on_curve(self):
        assert is_on_curve(G)

    def test_curve_order_annihilates_generator(self):
        assert base_mult(P256.n).infinity

    def test_a_is_minus_three(self):
        assert P256.a == P256.p - 3

    def test_known_2g(self):
        # 2G for P-256 (public test vector)
        two_g = point_double(G)
        assert two_g.x == 0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978
        assert two_g.y == 0x07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1

    def test_known_5g_via_scalar_mult(self):
        five_g = base_mult(5)
        assert five_g.x == 0x51590B7A515140D2D784C85608668FDFEF8C82FD1F5BE52421554A0DC3D033ED
        assert is_on_curve(five_g)


class TestGroupLaw:
    def test_identity_element(self):
        o = ECPoint.identity()
        assert point_add(G, o) == G
        assert point_add(o, G) == G

    def test_inverse_sums_to_identity(self):
        neg = ECPoint(G.x, (-G.y) % P256.p)
        assert point_add(G, neg).infinity

    def test_double_equals_add_self(self):
        assert point_double(G) == point_add(G, G)

    def test_jacobian_matches_affine_chain(self):
        """scalar_mult (Jacobian ladder) against repeated affine adds."""
        acc = ECPoint.identity()
        for k in range(1, 20):
            acc = point_add(acc, G)
            assert scalar_mult(k, G) == acc

    def test_scalar_mult_distributes(self):
        a, b = 123456789, 987654321
        lhs = scalar_mult(a + b, G)
        rhs = point_add(scalar_mult(a, G), scalar_mult(b, G))
        assert lhs == rhs

    def test_scalar_mult_mod_order(self):
        k = 0xDEADBEEF
        assert scalar_mult(k, G) == scalar_mult(k + P256.n, G)

    def test_results_stay_on_curve(self):
        for k in (2, 3, 1 << 100, P256.n - 1):
            assert is_on_curve(scalar_mult(k, G))


class TestEncoding:
    def test_round_trip(self):
        point = base_mult(42)
        assert ECPoint.decode(point.encode()) == point

    def test_identity_encoding(self):
        assert ECPoint.decode(ECPoint.identity().encode()).infinity

    def test_rejects_wrong_prefix(self):
        good = bytearray(base_mult(7).encode())
        good[0] = 0x05
        with pytest.raises(ValueError):
            ECPoint.decode(bytes(good))

    def test_rejects_off_curve_point(self):
        bogus = b"\x04" + (123).to_bytes(32, "big") + (456).to_bytes(32, "big")
        with pytest.raises(ValueError):
            ECPoint.decode(bogus)

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            ECPoint.decode(base_mult(7).encode()[:64])
