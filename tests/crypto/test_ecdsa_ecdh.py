"""ECDSA signatures and the authenticated ECDHE exchange."""

import pytest

from repro.crypto.ec import ECPoint, P256, base_mult
from repro.crypto.ecdh import EcdheExchange, SignedEphemeral, ecdh_shared_secret
from repro.crypto.ecdsa import (
    EcdsaKeyPair,
    decode_signature,
    ecdsa_sign,
    ecdsa_verify,
    encode_signature,
)
from repro.crypto.rng import HmacDrbg


@pytest.fixture
def keypair():
    return EcdsaKeyPair.generate(HmacDrbg(b"ecdsa-test-seed"))


class TestEcdsa:
    def test_sign_verify(self, keypair):
        sig = ecdsa_sign(keypair.private, b"attestation report")
        assert ecdsa_verify(keypair.public, b"attestation report", sig)

    def test_rejects_modified_message(self, keypair):
        sig = ecdsa_sign(keypair.private, b"report")
        assert not ecdsa_verify(keypair.public, b"report (doctored)", sig)

    def test_rejects_wrong_key(self, keypair):
        other = EcdsaKeyPair.generate(HmacDrbg(b"other-seed"))
        sig = ecdsa_sign(keypair.private, b"m")
        assert not ecdsa_verify(other.public, b"m", sig)

    def test_rejects_out_of_range_components(self, keypair):
        assert not ecdsa_verify(keypair.public, b"m", (0, 1))
        assert not ecdsa_verify(keypair.public, b"m", (1, P256.n))

    def test_rejects_identity_public_key(self):
        sig = (1, 1)
        assert not ecdsa_verify(ECPoint.identity(), b"m", sig)

    def test_deterministic_signatures(self, keypair):
        assert ecdsa_sign(keypair.private, b"m") == ecdsa_sign(keypair.private, b"m")

    def test_signature_encoding_round_trip(self, keypair):
        sig = ecdsa_sign(keypair.private, b"m")
        assert decode_signature(encode_signature(sig)) == sig

    def test_decode_rejects_bad_length(self):
        with pytest.raises(ValueError):
            decode_signature(bytes(63))


class TestEcdh:
    def test_raw_shared_secret_symmetric(self):
        a = EcdsaKeyPair.generate(HmacDrbg(b"a"))
        b = EcdsaKeyPair.generate(HmacDrbg(b"b"))
        assert ecdh_shared_secret(a.private, b.public) == ecdh_shared_secret(b.private, a.public)

    def test_rejects_identity_peer(self):
        a = EcdsaKeyPair.generate(HmacDrbg(b"a"))
        with pytest.raises(ValueError):
            ecdh_shared_secret(a.private, ECPoint.identity())


class TestEcdheExchange:
    def _pair(self):
        ia = EcdsaKeyPair.generate(HmacDrbg(b"identity-a"))
        ib = EcdsaKeyPair.generate(HmacDrbg(b"identity-b"))
        ea = EcdheExchange(ia, HmacDrbg(b"eph-a"))
        eb = EcdheExchange(ib, HmacDrbg(b"eph-b"))
        return ia, ib, ea, eb

    def test_agreement(self):
        ia, ib, ea, eb = self._pair()
        ka = ea.derive(eb.offer(), ib.public)
        kb = eb.derive(ea.offer(), ia.public)
        assert ka == kb
        assert len(ka) == 32

    def test_mitm_rejected(self):
        """A man in the middle substituting its own ephemeral key fails
        the identity-signature check — the Table I 'untrusted
        host/network' threat."""
        ia, ib, ea, eb = self._pair()
        mallory = EcdsaKeyPair.generate(HmacDrbg(b"mallory"))
        em = EcdheExchange(mallory, HmacDrbg(b"eph-m"))
        with pytest.raises(ValueError):
            ea.derive(em.offer(), ib.public)  # claims to be B, signed by M

    def test_tampered_offer_rejected(self):
        ia, ib, ea, eb = self._pair()
        offer = eb.offer()
        forged = SignedEphemeral(offer.ephemeral_public,
                                 offer.signature[:-1] + bytes([offer.signature[-1] ^ 1]))
        with pytest.raises(ValueError):
            ea.derive(forged, ib.public)

    def test_fresh_ephemerals_change_key(self):
        """Two sessions between the same identities derive different
        keys (forward secrecy comes from ephemeral freshness)."""
        ia = EcdsaKeyPair.generate(HmacDrbg(b"identity-a"))
        ib = EcdsaKeyPair.generate(HmacDrbg(b"identity-b"))
        k1 = EcdheExchange(ia, HmacDrbg(b"e1")).derive(
            EcdheExchange(ib, HmacDrbg(b"e2")).offer(), ib.public
        )
        k2 = EcdheExchange(ia, HmacDrbg(b"e3")).derive(
            EcdheExchange(ib, HmacDrbg(b"e4")).offer(), ib.public
        )
        assert k1 != k2

    def test_info_label_separates_keys(self):
        ia, ib, ea, eb = self._pair()
        offer = eb.offer()
        k1 = ea.derive(offer, ib.public, info=b"one")
        k2 = ea.derive(offer, ib.public, info=b"two")
        assert k1 != k2
