"""HMAC-DRBG and the simulated TRNG."""

import pytest

from repro.crypto.rng import HmacDrbg, SimulatedTrng, device_drbg


class TestSimulatedTrng:
    def test_deterministic_per_seed(self):
        assert SimulatedTrng(b"s").read(32) == SimulatedTrng(b"s").read(32)

    def test_distinct_seeds_distinct_streams(self):
        assert SimulatedTrng(b"a").read(32) != SimulatedTrng(b"b").read(32)

    def test_ratchets_between_reads(self):
        trng = SimulatedTrng(b"s")
        assert trng.read(32) != trng.read(32)

    def test_rejects_empty_seed(self):
        with pytest.raises(ValueError):
            SimulatedTrng(b"")

    def test_arbitrary_lengths(self):
        assert len(SimulatedTrng(b"s").read(100)) == 100


class TestHmacDrbg:
    def test_reproducible(self):
        a = HmacDrbg(b"entropy", b"p").generate(48)
        b = HmacDrbg(b"entropy", b"p").generate(48)
        assert a == b

    def test_personalization_separates(self):
        assert HmacDrbg(b"e", b"p1").generate(32) != HmacDrbg(b"e", b"p2").generate(32)

    def test_sequential_outputs_differ(self):
        drbg = HmacDrbg(b"e")
        assert drbg.generate(32) != drbg.generate(32)

    def test_additional_input_changes_output(self):
        a = HmacDrbg(b"e").generate(32, additional=b"x")
        b = HmacDrbg(b"e").generate(32)
        assert a != b

    def test_reseed_changes_stream(self):
        d1 = HmacDrbg(b"e")
        d2 = HmacDrbg(b"e")
        d1.generate(16)
        d2.generate(16)
        d1.reseed(b"fresh")
        assert d1.generate(16) != d2.generate(16)

    def test_random_int_below_in_range(self):
        drbg = HmacDrbg(b"e")
        for bound in (1, 2, 255, 256, 10**9, 1 << 255):
            value = drbg.random_int_below(bound)
            assert 0 <= value < bound

    def test_random_int_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"e").random_int_below(0)

    def test_random_int_covers_small_range(self):
        drbg = HmacDrbg(b"cover")
        seen = {drbg.random_int_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


def test_device_drbg_distinct_devices():
    assert device_drbg(b"dev-a").generate(16) != device_drbg(b"dev-b").generate(16)
