"""Device/session key bundles and the manufacturer PKI."""

import pytest

from repro.crypto.keys import DeviceKeys, SessionKeys
from repro.crypto.pki import DeviceCertificate, ManufacturerCA, verify_certificate
from repro.crypto.rng import HmacDrbg


@pytest.fixture
def ca():
    return ManufacturerCA(HmacDrbg(b"ca"))


class TestDeviceKeys:
    def test_provision_distinct_devices(self):
        a = DeviceKeys.provision(HmacDrbg(b"dev-a"))
        b = DeviceKeys.provision(HmacDrbg(b"dev-b"))
        assert a.public != b.public

    def test_public_matches_identity(self):
        keys = DeviceKeys.provision(HmacDrbg(b"dev"))
        assert keys.public == keys.identity.public


class TestSessionKeys:
    def test_user_and_device_transport_keys_agree(self):
        shared = b"\x42" * 32
        user = SessionKeys.derive_user_side(shared)
        device = SessionKeys.derive_device_side(shared, HmacDrbg(b"dev"))
        assert user.k_session == device.k_session
        assert user.k_transport_mac == device.k_transport_mac

    def test_memory_keys_device_only(self):
        shared = b"\x42" * 32
        user = SessionKeys.derive_user_side(shared)
        device = SessionKeys.derive_device_side(shared, HmacDrbg(b"dev"))
        assert user.k_mem_enc == b""
        assert len(device.k_mem_enc) == 16
        assert len(device.k_mem_mac) == 16
        assert device.k_mem_enc != device.k_mem_mac

    def test_fresh_memory_keys_per_session(self):
        shared = b"\x42" * 32
        drbg = HmacDrbg(b"dev")
        s1 = SessionKeys.derive_device_side(shared, drbg)
        s2 = SessionKeys.derive_device_side(shared, drbg)
        assert s1.k_mem_enc != s2.k_mem_enc

    def test_key_separation_between_labels(self):
        keys = SessionKeys.derive_user_side(b"\x01" * 32)
        assert keys.k_session != keys.k_transport_mac[:16]


class TestPki:
    def test_issue_and_verify(self, ca):
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        cert = ca.issue(b"accel-7", device.public)
        assert verify_certificate(cert, ca.root_public)

    def test_rejects_wrong_root(self, ca):
        other = ManufacturerCA(HmacDrbg(b"evil-ca"))
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        cert = ca.issue(b"accel-7", device.public)
        assert not verify_certificate(cert, other.root_public)

    def test_rejects_swapped_public_key(self, ca):
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        impostor = DeviceKeys.provision(HmacDrbg(b"impostor"))
        cert = ca.issue(b"accel-7", device.public)
        forged = DeviceCertificate(cert.device_id, impostor.public,
                                   cert.security_version, cert.signature)
        assert not verify_certificate(forged, ca.root_public)

    def test_rejects_changed_device_id(self, ca):
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        cert = ca.issue(b"accel-7", device.public)
        forged = DeviceCertificate(b"accel-8", cert.device_public,
                                   cert.security_version, cert.signature)
        assert not verify_certificate(forged, ca.root_public)

    def test_rejects_downgraded_security_version(self, ca):
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        cert = ca.issue(b"accel-7", device.public, security_version=3)
        forged = DeviceCertificate(cert.device_id, cert.device_public, 1, cert.signature)
        assert not verify_certificate(forged, ca.root_public)

    def test_rejects_garbage_signature(self, ca):
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        cert = ca.issue(b"accel-7", device.public)
        forged = DeviceCertificate(cert.device_id, cert.device_public,
                                   cert.security_version, b"junk")
        assert not verify_certificate(forged, ca.root_public)

    def test_empty_device_id_rejected(self, ca):
        device = DeviceKeys.provision(HmacDrbg(b"dev"))
        with pytest.raises(ValueError):
            ca.issue(b"", device.public)

    def test_fingerprint_distinct(self, ca):
        d1 = DeviceKeys.provision(HmacDrbg(b"d1"))
        d2 = DeviceKeys.provision(HmacDrbg(b"d2"))
        c1 = ca.issue(b"a", d1.public)
        c2 = ca.issue(b"b", d2.public)
        assert c1.fingerprint() != c2.fingerprint()
