"""Property-based tests on the crypto substrate."""

from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.cmac import AesCmac
from repro.crypto.ctr import AesCtr
from repro.crypto.hmac import hmac_sha256
from repro.crypto.sha256 import Sha256, sha256

keys = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)
messages = st.binary(min_size=0, max_size=300)


@settings(max_examples=25, deadline=None)
@given(key=keys, block=blocks)
def test_aes_decrypt_inverts_encrypt(key, block):
    aes = AES128(key)
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


@settings(max_examples=25, deadline=None)
@given(key=keys, data=messages, address=st.integers(0, (1 << 50)),
       vn=st.integers(0, (1 << 64) - 1))
def test_ctr_region_round_trip(key, data, address, vn):
    padded = data + bytes(-len(data) % 16)
    ctr = AesCtr(key)
    assert ctr.crypt_region(address, vn, ctr.crypt_region(address, vn, padded)) == padded


@settings(max_examples=25, deadline=None)
@given(key=keys, data=st.binary(min_size=16, max_size=64),
       address=st.integers(0, 1 << 40), vn=st.integers(0, (1 << 64) - 2))
def test_ctr_different_vn_different_ciphertext(key, data, address, vn):
    padded = data + bytes(-len(data) % 16)
    ctr = AesCtr(key)
    assert ctr.crypt_region(address, vn, padded) != ctr.crypt_region(address, vn + 1, padded)


@settings(max_examples=25, deadline=None)
@given(key=keys, message=messages)
def test_cmac_deterministic_and_sensitive(key, message):
    mac = AesCmac(key)
    tag = mac.mac(message)
    assert mac.mac(message) == tag
    assert mac.verify(message, tag)
    assert not mac.verify(message + b"\x00", tag)


@settings(max_examples=25, deadline=None)
@given(message=messages, split=st.integers(0, 300))
def test_sha256_incremental_equals_oneshot(message, split):
    split = min(split, len(message))
    h = Sha256()
    h.update(message[:split])
    h.update(message[split:])
    assert h.digest() == sha256(message)


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=0, max_size=100), m1=messages, m2=messages)
def test_hmac_distinct_messages_distinct_tags(key, m1, m2):
    if m1 != m2:
        assert hmac_sha256(key, m1) != hmac_sha256(key, m2)
