"""Side-channel properties (Section II-A / Table I).

"A typical DNN model has a fixed memory access pattern, and the timing
for a given model is agnostic to inputs and weights." Two levels:

* model level — the performance simulation's cycle counts and traffic
  depend only on the network *structure*, never on values (trivially
  true by construction, but the test pins it against regressions);
* functional-device level — executing the same instruction stream with
  different secret values must touch the same addresses in the same
  order and produce identical-length outputs.
"""

import numpy as np
import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.core.device import GuardNNDevice
from repro.core.host import HonestHost, MlpSpec
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg
from repro.protection.guardnn import GuardNNProtection


class TestModelLevel:
    def test_timing_is_structural(self):
        """Same network, same config -> bit-identical timing, regardless
        of any data values (none are inputs to the model)."""
        accel = AcceleratorModel(TPU_V1_CONFIG)
        model = build_model("googlenet")
        scheme = GuardNNProtection(integrity=True)
        a = accel.run(model, scheme)
        b = accel.run(model, scheme)
        assert a.total_cycles == b.total_cycles
        assert [l.total_cycles for l in a.layers] == [l.total_cycles for l in b.layers]


def _run_and_trace(seed_value: int):
    """Run the same MLP program with different secret values; return the
    sequence of (instruction type, operand bases) + DRAM write pattern."""
    ca = ManufacturerCA(HmacDrbg(b"sc-ca"))
    device = GuardNNDevice(b"sc-dev", ca, seed=b"sc-seed", dram_bytes=1 << 20)
    host = HonestHost(device)
    user = UserSession(ca.root_public, HmacDrbg(b"sc-user"))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=True)

    rng = np.random.default_rng(seed_value)
    spec = MlpSpec([rng.integers(-15, 15, size=(32, 16), dtype=np.int8),
                    rng.integers(-15, 15, size=(16, 8), dtype=np.int8)])
    x = rng.integers(-15, 15, size=(4, 32), dtype=np.int8)
    out, _ = host.compile_and_run(user, spec, x)

    trace = [(type(i).__name__,
              tuple(getattr(i, f, None) for f in ("base", "input_base", "weight_base",
                                                  "output_base", "m", "k", "n", "size")))
             for i in host.instruction_log]
    return trace, out.nbytes, device.instruction_count


class TestFunctionalDeviceLevel:
    def test_identical_access_pattern_for_different_secrets(self):
        """Different weights and inputs -> byte-identical instruction/
        address trace and output size. An observer of addresses and
        timing learns only the structure."""
        t1, n1, c1 = _run_and_trace(seed_value=11)
        t2, n2, c2 = _run_and_trace(seed_value=22)
        assert t1 == t2
        assert n1 == n2
        assert c1 == c2

    def test_export_blob_length_independent_of_values(self):
        """Sealed outputs are the same length for any values (no
        length-channel through the transport)."""
        ca = ManufacturerCA(HmacDrbg(b"sc-ca2"))
        device = GuardNNDevice(b"sc2", ca, seed=b"sc2", dram_bytes=1 << 20)
        host = HonestHost(device)
        user = UserSession(ca.root_public, HmacDrbg(b"sc-user2"))
        user.authenticate_device(host.fetch_device_info())
        host.establish_session(user)
        rng = np.random.default_rng(5)
        sizes = set()
        for _ in range(3):
            blob = user.seal_input(rng.integers(-99, 99, size=(4, 32), dtype=np.int8))
            sizes.add(len(blob))
        assert len(sizes) == 1
