"""Property tests on the performance-model layers."""

from hypothesis import given, settings, strategies as st

from repro.accel.layers import GemmShape
from repro.accel.scheduler import TilingScheduler, LayerTraffic
from repro.accel.systolic import Dataflow, SystolicArray
from repro.mem.cache import SetAssociativeCache
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE

dims = st.integers(min_value=1, max_value=2048)


@settings(max_examples=50, deadline=None)
@given(m=dims, k=dims, n=dims)
def test_systolic_cycles_bounded_by_ideal(m, k, n):
    """Cycles >= perfect-utilization lower bound, utilization <= 1."""
    array = SystolicArray(16, 16)
    gemm = GemmShape(m, k, n)
    for dataflow in Dataflow:
        timing = array.gemm_cycles(gemm, dataflow)
        assert timing.cycles >= gemm.macs / array.num_pes
        assert 0 < timing.utilization <= 1.0


@settings(max_examples=50, deadline=None)
@given(m=dims, k=dims, n=dims, sram_kb=st.integers(4, 1 << 14))
def test_scheduler_traffic_at_least_compulsory(m, k, n, sram_kb):
    """Traffic never drops below compulsory misses (each tensor once),
    and outputs are written exactly once."""
    from repro.accel.layers import DenseLayer

    scheduler = TilingScheduler(sram_kb * 1024)
    layer = DenseLayer("fc", in_features=k, out_features=n, seq=m)
    t = scheduler.layer_traffic(layer)
    assert t.weight_reads >= t.weight_size
    assert t.input_reads >= t.input_size
    assert t.output_writes == t.output_size


traffic_values = st.integers(min_value=0, max_value=1 << 26)


@settings(max_examples=50, deadline=None)
@given(w=traffic_values, i=traffic_values, o=traffic_values)
def test_protection_overhead_monotone_and_ordered(w, i, o):
    """BP metadata >= GuardNN_CI metadata >= GuardNN_C metadata = 0, for
    any traffic mix."""
    if w + i + o == 0:
        return
    t = LayerTraffic(layer_name="L", weight_reads=w, input_reads=i, output_writes=o,
                     weight_size=w, input_size=i, output_size=o)
    bp = BaselineMEE().layer_overhead(t, "forward", False).total_bytes
    ci = GuardNNProtection(integrity=True).layer_overhead(t, "forward", False).total_bytes
    c = GuardNNProtection(integrity=False).layer_overhead(t, "forward", False).total_bytes
    assert c == 0
    assert ci <= bp or (w + i + o) < 512  # tiny layers can tie
    assert ci >= 0


@settings(max_examples=30, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
    ways=st.sampled_from([1, 2, 4, 8]),
)
def test_cache_stats_consistent(addresses, ways):
    cache = SetAssociativeCache(64 * ways * 8, 64, ways)
    writebacks = 0
    for addr in addresses:
        _, wb = cache.access(addr, is_write=bool(addr % 2))
        if wb is not None:
            writebacks += 1
    stats = cache.stats
    assert stats.accesses == len(addresses)
    assert stats.hits + stats.misses == len(addresses)
    assert writebacks == stats.dirty_evictions
    assert stats.evictions <= stats.misses
