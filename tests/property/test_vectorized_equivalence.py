"""Randomized equivalence: every fast-path kernel is bit-identical to
its scalar reference.

The vectorized hot-path engine (see ``docs/PERFORMANCE.md``) keeps the
original first-principles implementations as the trusted references and
adds table-driven / batched / memoized fast paths. These tests pin the
contract that makes that safe: on arbitrary inputs, the two paths
produce exactly the same bytes, request sequences, cycle counts, and
tree states.
"""

from hypothesis import given, settings, strategies as st

from repro import perf
from repro.crypto import aes_fast
from repro.crypto.aes import AES128
from repro.crypto.ctr import AesCtr, ctr_keystream
from repro.crypto.gf128 import Gf128Table, gf128_mul, ghash
from repro.crypto.gmac import AesGmac
from repro.crypto.sha256 import sha256
from repro.crypto.sha256_fast import hmac_sha256_many, sha256_many
from repro.mem.batch import RequestBatch
from repro.mem.controller import MemoryController
from repro.mem.trace import MemoryRequest, RequestKind
from repro.protection.merkle import MerkleTree
from repro.protection.trace_rewriter import GuardNNTraceRewriter, MeeTraceRewriter

keys = st.binary(min_size=16, max_size=16)
field_elements = st.integers(0, (1 << 128) - 1)

#: message batches with deliberately nasty shapes for the lane-parallel
#: hash: ragged lengths, empty lanes, and lengths pinned to the FIPS
#: padding boundaries (55/56 one-vs-two padding blocks, 63/64/65 block
#: edges) mixed with arbitrary bytes
hash_messages = st.lists(
    st.one_of(
        st.binary(min_size=0, max_size=200),
        st.integers(0, 130).map(lambda n: b"\xa5" * n),
        st.sampled_from([b"", b"q" * 55, b"r" * 56, b"s" * 63, b"t" * 64,
                         b"u" * 65, b"v" * 119, b"w" * 120]),
    ),
    min_size=0, max_size=16,
)


# -- crypto kernels --------------------------------------------------------


block_aligned = st.lists(
    st.binary(min_size=16, max_size=16), min_size=0, max_size=24
).map(b"".join)


@settings(max_examples=25, deadline=None)
@given(key=keys, data=block_aligned)
def test_batched_aes_matches_scalar_blocks(key, data):
    aes = AES128(key)
    reference = b"".join(
        aes.encrypt_block(data[i : i + 16]) for i in range(0, len(data), 16)
    )
    assert aes_fast.encrypt_blocks(key, data) == reference


@settings(max_examples=25, deadline=None)
@given(key=keys, counter=st.integers(0, (1 << 128) - 1), nbytes=st.integers(0, 600))
def test_fast_ctr_keystream_matches_scalar(key, counter, nbytes):
    aes = AES128(key)
    fast = ctr_keystream(aes, counter.to_bytes(16, "big"), nbytes)
    with perf.scalar_mode():
        reference = ctr_keystream(aes, counter.to_bytes(16, "big"), nbytes)
    assert fast == reference


@settings(max_examples=25, deadline=None)
@given(key=keys, data=block_aligned, address=st.integers(0, 1 << 48),
       vn=st.integers(0, (1 << 64) - 1))
def test_fast_ctr_region_matches_scalar(key, data, address, vn):
    fast = AesCtr(key).crypt_region(address, vn, data)
    with perf.scalar_mode():
        reference = AesCtr(key).crypt_region(address, vn, data)
    assert fast == reference


@settings(max_examples=40, deadline=None)
@given(h=field_elements, x=field_elements)
def test_gf128_table_matches_bit_serial(h, x):
    assert Gf128Table(h).mul(x) == gf128_mul(x, h)


@settings(max_examples=25, deadline=None)
@given(h=field_elements, data=st.binary(min_size=0, max_size=200))
def test_table_ghash_matches_bit_serial(h, data):
    fast = ghash(h, data)
    with perf.scalar_mode():
        reference = ghash(h, data)
    assert fast == reference


@settings(max_examples=15, deadline=None)
@given(key=keys, iv=st.binary(min_size=12, max_size=12),
       data=st.binary(min_size=0, max_size=200),
       aad=st.binary(min_size=0, max_size=64))
def test_table_gmac_matches_bit_serial(key, iv, data, aad):
    fast = AesGmac(key).mac(iv, data, aad)
    with perf.scalar_mode():
        reference = AesGmac(key).mac(iv, data, aad)
    assert fast == reference


# -- lane-parallel hashing -------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(messages=hash_messages)
def test_lane_parallel_sha256_matches_scalar(messages):
    fast = sha256_many(messages)
    with perf.scalar_mode():
        reference = sha256_many(messages)
    assert fast == reference
    assert fast == [sha256(m) for m in messages]


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=0, max_size=100), messages=hash_messages)
def test_batched_hmac_matches_scalar(key, messages):
    from repro.crypto.hmac import hmac_sha256

    fast = hmac_sha256_many(key, messages)
    with perf.scalar_mode():
        reference = hmac_sha256_many(key, messages)
    assert fast == reference
    assert fast == [hmac_sha256(key, m) for m in messages]


def test_lane_parallel_sha256_long_uniform_batch():
    """A wide uniform batch (every lane the same block count) takes the
    maskless commit path; pin it against the scalar reference."""
    messages = [bytes((i + j) & 0xFF for j in range(96)) for i in range(300)]
    assert sha256_many(messages) == [sha256(m) for m in messages]


# -- trace pipeline --------------------------------------------------------


request_lists = st.lists(
    st.builds(
        MemoryRequest,
        address=st.integers(0, (1 << 24) - 1),
        size=st.sampled_from([16, 64, 100, 512, 4096]),
        is_write=st.booleans(),
        kind=st.just(RequestKind.DATA),
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=25, deadline=None)
@given(trace=request_lists)
def test_request_batch_round_trip_and_stats(trace):
    batch = RequestBatch.from_requests(trace)
    assert batch.to_requests() == trace
    assert list(batch) == trace
    from repro.mem.trace import TraceStats

    reference = TraceStats()
    for req in trace:
        reference.add(req)
    stats = batch.stats()
    assert stats.read_bytes == reference.read_bytes
    assert stats.write_bytes == reference.write_bytes


@settings(max_examples=20, deadline=None)
@given(trace=request_lists, integrity=st.booleans())
def test_guardnn_rewriter_batch_matches_scalar(trace, integrity):
    scalar = GuardNNTraceRewriter(integrity=integrity)
    batched = GuardNNTraceRewriter(integrity=integrity)
    reference = scalar.rewrite(trace) + scalar.flush()
    out = batched.rewrite_batch(RequestBatch.from_requests(trace))
    flushed = batched.flush_batch()
    assert out.to_requests() + flushed.to_requests() == reference


@settings(max_examples=15, deadline=None)
@given(trace=request_lists)
def test_mee_rewriter_batch_matches_scalar(trace):
    scalar = MeeTraceRewriter()
    batched = MeeTraceRewriter()
    reference = scalar.rewrite(trace) + scalar.flush()
    out = batched.rewrite_batch(RequestBatch.from_requests(trace))
    flushed = batched.flush_batch()
    assert out.to_requests() + flushed.to_requests() == reference


@settings(max_examples=15, deadline=None)
@given(trace=request_lists)
def test_controller_batch_matches_scalar_trace(trace):
    scalar = MemoryController().run_trace(trace)
    batched = MemoryController().run_batch(RequestBatch.from_requests(trace))
    assert (scalar.cycles, scalar.requests, scalar.bursts) == (
        batched.cycles, batched.requests, batched.bursts)
    assert scalar.stats.read_bytes == batched.stats.read_bytes
    assert scalar.stats.write_bytes == batched.stats.write_bytes


def test_streaming_pipeline_batch_matches_scalar_at_scale():
    """Long streaming traces drive the run-compressed rewriter paths
    and the controller's row-hit run servicing across several refresh
    intervals — shapes the short hypothesis traces cannot reach."""
    from repro.workloads.generators import streaming_trace, streaming_trace_batch

    trace = streaming_trace(1 << 17, write_fraction=0.4)
    batch = streaming_trace_batch(1 << 17, write_fraction=0.4)

    scalar_rw = MeeTraceRewriter()
    batch_rw = MeeTraceRewriter()
    assert (batch_rw.rewrite_batch(batch).to_requests()
            + batch_rw.flush_batch().to_requests()
            == scalar_rw.rewrite(trace) + scalar_rw.flush())

    scalar_gn = GuardNNTraceRewriter(integrity=True)
    batch_gn = GuardNNTraceRewriter(integrity=True)
    assert (batch_gn.rewrite_batch(batch).to_requests()
            + batch_gn.flush_batch().to_requests()
            == scalar_gn.rewrite(trace) + scalar_gn.flush())

    scalar_mc, batch_mc = MemoryController(), MemoryController()
    scalar_result = scalar_mc.run_trace(trace)
    batch_result = batch_mc.run_batch(batch)
    assert (scalar_result.cycles, scalar_result.bursts) == (
        batch_result.cycles, batch_result.bursts)
    assert scalar_mc.dram.stats == batch_mc.dram.stats


# -- Merkle batch updates --------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    num_leaves=st.integers(1, 64),
    updates=st.lists(
        st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=24)),
        min_size=0, max_size=40,
    ),
)
def test_merkle_batched_update_matches_sequential(num_leaves, updates):
    updates = [(i % num_leaves, leaf) for i, leaf in updates]
    sequential = MerkleTree(num_leaves)
    for index, leaf in updates:
        sequential.update_leaf(index, leaf)
    batched = MerkleTree(num_leaves)
    batched.update_leaves(updates)
    assert batched.root == sequential.root
    assert batched._levels == sequential._levels
    # proofs from the batched tree verify leaves like any other
    for index, leaf in updates[-4:]:
        final = dict(updates)[index]
        assert batched.verify_leaf(index, final, batched.proof(index))


# -- analytic sweep path ---------------------------------------------------


def test_accelerator_fast_path_matches_scalar():
    """Full memoized model pipeline == uncached pipeline, per layer."""
    from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
    from repro.accel.models import build_model
    from repro.protection import build_scheme

    model = build_model("resnet50")
    for scheme_name in ("np", "bp", "guardnn-ci"):
        fast = AcceleratorModel(TPU_V1_CONFIG).run(model, build_scheme(scheme_name))
        with perf.scalar_mode():
            reference = AcceleratorModel(TPU_V1_CONFIG).run(
                build_model("resnet50"), build_scheme(scheme_name))
        assert fast.total_cycles == reference.total_cycles
        assert [l.total_cycles for l in fast.layers] == [
            l.total_cycles for l in reference.layers]
        assert fast.metadata_breakdown == reference.metadata_breakdown
