"""Checkpoint/resume equivalence: interrupted == uninterrupted, bit
for bit.

The checkpoint contract extends the chunking contract one level up: a
pipeline run that is checkpointed at an arbitrary chunk seam, torn
down, and resumed from disk in a *fresh* pipeline must reproduce the
uninterrupted run exactly — cycles, bursts, per-kind traffic, DRAM
bank statistics, carried cache/Merkle/counter state, all of it. These
tests pin that contract across every trace generator, scheme, and
chunk size the equivalence suite already sweeps, plus the envelope
validation around it (fingerprint pinning, version checks, cursor
seams).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.zoo_ext import LlmGeometry
from repro.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.mem.pipeline import PipelineCheckpointed, TracePipeline
from repro.workloads import BpMetadataSpec, RandomSpec, StreamingSpec
from repro.workloads.llm import LlmDecodeSpec

SCHEMES = ("np", "guardnn-ci", "bp")

TINY_LM = LlmGeometry("tiny-lm", d_model=64, layers=2, heads=2, d_ff=128,
                      vocab=512, max_seq=64)

spec_strategy = st.one_of(
    st.builds(StreamingSpec,
              nbytes=st.integers(1, 60).map(lambda n: n * 1024),
              write_fraction=st.sampled_from([0.0, 0.25, 0.4, 1.0])),
    st.builds(RandomSpec,
              n_requests=st.integers(1, 900),
              span_bytes=st.sampled_from([1 << 16, 1 << 22]),
              seed=st.integers(0, 5),
              write_fraction=st.sampled_from([0.0, 0.3, 0.5])),
    st.builds(BpMetadataSpec, nbytes=st.integers(1, 40).map(lambda n: n * 1024)),
    st.builds(LlmDecodeSpec, geometry=st.just(TINY_LM),
              layers=st.integers(1, 2), tokens=st.integers(1, 2),
              context=st.integers(1, 32)),
)


def _summary(results):
    out = {}
    for name, outcome in results.items():
        timing = outcome.result
        out[name] = (timing.cycles, timing.bursts, timing.requests,
                     timing.stats.read_bytes, timing.stats.write_bytes)
    return out


def _fresh(spec, schemes, chunk):
    if isinstance(spec, StreamingSpec):
        clone = StreamingSpec(spec.nbytes, base=spec.base,
                              write_fraction=spec.write_fraction,
                              stride=spec.stride)
    elif isinstance(spec, RandomSpec):
        clone = RandomSpec(spec.total_requests, spec.span_bytes,
                           seed=spec.seed, write_fraction=spec.write_fraction,
                           stride=spec.stride)
    elif isinstance(spec, BpMetadataSpec):
        clone = BpMetadataSpec(spec.nbytes, base=spec.base,
                               meta_base=spec.meta_base)
    else:
        clone = LlmDecodeSpec(spec.geometry, tokens=spec.tokens,
                              context=spec.context, layers=spec.layers,
                              elem_bytes=spec.elem_bytes, stride=spec.stride,
                              seed=spec.seed)
    return TracePipeline(clone, schemes=schemes, chunk_requests=chunk)


@settings(max_examples=15, deadline=None)
@given(spec=spec_strategy, scheme=st.sampled_from(SCHEMES),
       chunk=st.integers(1, 2048), stop_after=st.integers(1, 8))
def test_resume_is_bit_identical(tmp_path_factory, spec, scheme, chunk,
                                 stop_after):
    """Checkpoint after an arbitrary chunk, resume in a fresh pipeline,
    and the final timings equal the uninterrupted run exactly — the
    interruption point is unobservable."""
    tmp_path = tmp_path_factory.mktemp("ckpt")
    chunk = min(chunk, max(spec.total_requests, 1))
    path = str(tmp_path / "run.ckpt")

    reference = _summary(_fresh(spec, (scheme,), chunk).run())

    count = [0]

    def stop(*_args):
        count[0] += 1
        return count[0] >= stop_after

    first = _fresh(spec, (scheme,), chunk)
    try:
        first.run(checkpoint_path=path, checkpoint_request=stop)
    except PipelineCheckpointed:
        resumed = _fresh(spec, (scheme,), chunk)
        results = resumed.run(resume_from=path)
    else:
        # the run finished before the threshold (few chunks): nothing
        # was interrupted, so it must itself equal the reference
        results = _fresh(spec, (scheme,), chunk).run()
    assert _summary(results) == reference


@settings(max_examples=8, deadline=None)
@given(spec=spec_strategy, chunk=st.integers(16, 1024),
       every=st.integers(1, 4))
def test_periodic_checkpoints_resume_identically(tmp_path_factory, spec,
                                                 chunk, every):
    """A run writing periodic checkpoints finishes with the same result
    as one that never checkpoints, and resuming from the *last* written
    checkpoint reproduces it too (multi-scheme shared pass)."""
    tmp_path = tmp_path_factory.mktemp("ckpt")
    chunk = min(chunk, max(spec.total_requests, 1))
    path = str(tmp_path / "periodic.ckpt")
    schemes = ("np", "bp")

    reference = _summary(_fresh(spec, schemes, chunk).run())
    written = []
    checkpointing = _fresh(spec, schemes, chunk)
    results = checkpointing.run(
        checkpoint_path=path, checkpoint_every=every,
        on_checkpoint=lambda p, chunks, done: written.append((chunks, done)))
    assert _summary(results) == reference

    if written:
        resumed = _fresh(spec, schemes, chunk).run(resume_from=path)
        assert _summary(resumed) == reference


def test_checkpoint_rejects_wrong_fingerprint(tmp_path):
    """A checkpoint resumes only the computation that wrote it: change
    the spec, the scheme set, or the chunk size and the load refuses."""
    path = str(tmp_path / "pin.ckpt")
    spec = StreamingSpec(1 << 15, write_fraction=0.25)
    try:
        TracePipeline(spec, schemes=("np",), chunk_requests=64).run(
            checkpoint_path=path, checkpoint_request=lambda *a: True)
    except PipelineCheckpointed:
        pass
    for wrong in (
        TracePipeline(StreamingSpec(1 << 16, write_fraction=0.25),
                      schemes=("np",), chunk_requests=64),
        TracePipeline(StreamingSpec(1 << 15, write_fraction=0.25),
                      schemes=("bp",), chunk_requests=64),
        TracePipeline(StreamingSpec(1 << 15, write_fraction=0.25),
                      schemes=("np",), chunk_requests=128),
    ):
        with pytest.raises(CheckpointError):
            wrong.run(resume_from=path)


def test_checkpoint_envelope_validation(tmp_path):
    missing = str(tmp_path / "nope.ckpt")
    with pytest.raises(CheckpointError):
        load_checkpoint(missing)

    corrupt = tmp_path / "bad.ckpt"
    corrupt.write_text("{not json")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(corrupt))

    wrong_version = tmp_path / "old.ckpt"
    wrong_version.write_text(json.dumps(
        {"version": CHECKPOINT_VERSION + 1, "kind": "trace-pipeline"}))
    with pytest.raises(CheckpointError):
        load_checkpoint(str(wrong_version))

    wrong_kind = str(tmp_path / "kind.ckpt")
    save_checkpoint(wrong_kind, {"kind": "something-else"})
    with pytest.raises(CheckpointError):
        load_checkpoint(wrong_kind, kind="trace-pipeline")
    assert load_checkpoint(wrong_kind)["kind"] == "something-else"


def test_checkpoint_rejects_any_future_version(tmp_path):
    """Forward compatibility is refusal, not best-effort parsing: an
    envelope stamped by *any* newer writer — next version or far
    future — must be rejected with a clear error naming the version,
    never partially loaded."""
    for future in (CHECKPOINT_VERSION + 1, CHECKPOINT_VERSION + 7, 999999):
        path = tmp_path / f"future-{future}.ckpt"
        path.write_text(json.dumps({
            "version": future, "kind": "trace-pipeline",
            "state": {"cursor": 3, "from": "a newer writer"}}))
        with pytest.raises(CheckpointError) as error:
            load_checkpoint(str(path), kind="trace-pipeline")
        assert str(future) in str(error.value) or "version" in str(error.value)


def test_checkpoint_truncated_at_every_prefix_rejected(tmp_path):
    """A torn write (host crash mid-publish without the fsync+rename
    discipline) must never half-load: every strict byte prefix of a
    valid envelope raises CheckpointError — there is no prefix length
    at which a partial checkpoint silently parses as a shorter one."""
    path = str(tmp_path / "whole.ckpt")
    save_checkpoint(path, {"kind": "trace-pipeline",
                           "state": {"cursor": 5, "rows": [1, 2, 3]}})
    with open(path, "rb") as handle:
        payload = handle.read()
    truncated = str(tmp_path / "torn.ckpt")
    for cut in range(len(payload)):
        with open(truncated, "wb") as handle:
            handle.write(payload[:cut])
        with pytest.raises(CheckpointError):
            load_checkpoint(truncated, kind="trace-pipeline")
    # sanity: the full payload still loads
    with open(truncated, "wb") as handle:
        handle.write(payload)
    assert load_checkpoint(truncated)["state"]["cursor"] == 5


def test_checkpoint_unknown_fields_at_current_version_ok(tmp_path):
    """Same-version envelopes with *extra* fields (a same-version
    writer recording more) load fine — versioning gates structure
    changes, not additive metadata."""
    path = str(tmp_path / "extra.ckpt")
    save_checkpoint(path, {"kind": "trace-pipeline",
                           "state": {"cursor": 2},
                           "novel_field": {"nested": True},
                           "another": [1, 2]})
    loaded = load_checkpoint(path, kind="trace-pipeline")
    assert loaded["state"]["cursor"] == 2
    assert loaded["novel_field"] == {"nested": True}


def test_save_checkpoint_is_atomic(tmp_path):
    """Publishing a new checkpoint over an old one leaves no temp
    debris and the file always parses (the tmp+rename discipline)."""
    path = str(tmp_path / "atomic.ckpt")
    for i in range(3):
        save_checkpoint(path, {"kind": "trace-pipeline", "i": i})
        assert load_checkpoint(path)["i"] == i
    leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
    assert leftovers == []


def test_checkpoint_requires_a_path():
    spec = StreamingSpec(1 << 14)
    pipeline = TracePipeline(spec, schemes=("np",), chunk_requests=64)
    with pytest.raises(ValueError):
        pipeline.run(checkpoint_every=2)
    with pytest.raises(ValueError):
        pipeline.run(checkpoint_request=lambda *a: False)
