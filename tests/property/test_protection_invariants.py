"""Property tests for the protection-scheme timing contract.

Invariants every registered scheme must satisfy (the experiment
subsystem builds schemes through :func:`repro.protection.build_scheme`,
so these properties hold for exactly the set of schemes a sweep can
name):

* ``BaselineMEE._stream`` metadata traffic is zero for empty regions or
  empty streams, and monotone in both region size and pass count;
* a scheme's ``provides_integrity`` / ``provides_confidentiality``
  flags match the ``RequestKind``s it emits — no MAC/TREE bytes without
  integrity, no metadata at all from NP;
* overhead byte counts are never negative and the per-kind breakdown
  always sums to the read+write totals.
"""

from hypothesis import given, settings, strategies as st

from repro.accel.scheduler import LayerTraffic
from repro.mem.trace import RequestKind
from repro.protection import build_scheme, list_schemes
from repro.protection.mee import BaselineMEE
from repro.protection.scheme import ProtectionOverhead

region_sizes = st.integers(min_value=0, max_value=1 << 26)
passes = st.integers(min_value=1, max_value=8)


def _stream_bytes(region_bytes: int, n_passes: int, cached: bool,
                  is_write: bool = False) -> ProtectionOverhead:
    overhead = ProtectionOverhead()
    BaselineMEE()._stream(overhead, stream_bytes=max(region_bytes, 1) * n_passes,
                          region_bytes=region_bytes, is_write=is_write,
                          passes=n_passes, cached=cached)
    return overhead


def _traffic(weight: int, inp: int, out: int) -> LayerTraffic:
    return LayerTraffic(layer_name="t", weight_reads=weight, input_reads=inp,
                        output_writes=out, weight_size=weight, input_size=inp,
                        output_size=out)


class TestMeeStream:
    def test_zero_for_empty_region(self):
        overhead = ProtectionOverhead()
        BaselineMEE()._stream(overhead, stream_bytes=0, region_bytes=0,
                              is_write=False, passes=1, cached=False)
        assert overhead.total_bytes == 0
        assert overhead.breakdown == {}

    def test_zero_for_empty_stream_over_nonempty_region(self):
        overhead = ProtectionOverhead()
        BaselineMEE()._stream(overhead, stream_bytes=0, region_bytes=4096,
                              is_write=False, passes=1, cached=False)
        assert overhead.total_bytes == 0

    @settings(max_examples=40, deadline=None)
    @given(small=region_sizes, delta=st.integers(0, 1 << 24),
           n=passes, cached=st.booleans())
    def test_monotone_in_region_size(self, small, delta, n, cached):
        a = _stream_bytes(small, n, cached)
        b = _stream_bytes(small + delta, n, cached)
        assert b.total_bytes >= a.total_bytes

    @settings(max_examples=40, deadline=None)
    @given(region=st.integers(1, 1 << 24), n=passes, extra=st.integers(0, 4))
    def test_monotone_in_passes_when_uncached(self, region, n, extra):
        a = _stream_bytes(region, n, cached=False)
        b = _stream_bytes(region, n + extra, cached=False)
        assert b.total_bytes >= a.total_bytes

    @settings(max_examples=40, deadline=None)
    @given(region=st.integers(1, 1 << 24), n=passes)
    def test_cached_never_exceeds_uncached(self, region, n):
        assert (_stream_bytes(region, n, cached=True).total_bytes
                <= _stream_bytes(region, n, cached=False).total_bytes)

    @settings(max_examples=40, deadline=None)
    @given(region=st.integers(1, 1 << 24), n=passes, cached=st.booleans())
    def test_writes_cost_at_least_reads(self, region, n, cached):
        """Write streams add the dirty-line writeback on top of the
        fetch traffic."""
        read = _stream_bytes(region, n, cached, is_write=False)
        write = _stream_bytes(region, n, cached, is_write=True)
        assert write.total_bytes >= read.total_bytes
        assert write.extra_write_bytes > 0


class TestSchemeFlagContract:
    @settings(max_examples=30, deadline=None)
    @given(weight=region_sizes, inp=region_sizes, out=region_sizes,
           training=st.booleans())
    def test_flags_match_emitted_kinds(self, weight, inp, out, training):
        traffic = _traffic(weight, inp, out)
        for name in list_schemes():
            scheme = build_scheme(name)
            overhead = scheme.layer_overhead(traffic, "forward", training)
            kinds = {k for k, v in overhead.breakdown.items() if v > 0}
            if not scheme.provides_integrity:
                assert RequestKind.MAC not in kinds, name
                assert RequestKind.TREE not in kinds, name
            if not scheme.provides_confidentiality:
                # NP: no engine, no metadata of any kind
                assert overhead.total_bytes == 0, name
                assert scheme.engine is None, name
            assert RequestKind.DATA not in kinds, name

    @settings(max_examples=30, deadline=None)
    @given(weight=region_sizes, inp=region_sizes, out=region_sizes,
           op=st.sampled_from(["forward", "dgrad", "wgrad", "update"]),
           training=st.booleans())
    def test_breakdown_sums_to_totals(self, weight, inp, out, op, training):
        traffic = _traffic(weight, inp, out)
        for name in list_schemes():
            overhead = build_scheme(name).layer_overhead(traffic, op, training)
            assert overhead.extra_read_bytes >= 0 and overhead.extra_write_bytes >= 0
            assert sum(overhead.breakdown.values()) == overhead.total_bytes, name

    def test_registry_covers_the_papers_four_points(self):
        names = {build_scheme(n).name for n in list_schemes()}
        assert names == {"NP", "BP", "GuardNN_C", "GuardNN_CI"}

    def test_empty_traffic_is_free_for_every_scheme(self):
        empty = _traffic(0, 0, 0)
        for name in list_schemes():
            overhead = build_scheme(name).layer_overhead(empty, "forward", False)
            assert overhead.total_bytes == 0, name
