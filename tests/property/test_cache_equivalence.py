"""Randomized equivalence: the vectorized cache engine is bit-identical
to the ``OrderedDict`` reference.

:class:`~repro.mem.cache_fast.FastSetAssociativeCache` re-implements the
VN/MAC metadata cache as dense numpy state with a batched
``access_many`` kernel (see ``docs/PERFORMANCE.md``). These tests drive
random mixed read/write address streams through both implementations and
assert the full observable contract: per-access hit/miss and writeback
results, aggregate stats, line residency, dirty state (via ``flush``
ordering), and the ``retouch`` coalescing path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import SetAssociativeCache
from repro.mem.cache_fast import FastSetAssociativeCache

#: geometries spanning one-set, direct-ish, and realistically sized
#: caches (line 64 B fixed — the metadata line size everywhere)
geometries = st.sampled_from([
    (64 * 2, 64, 2),      # one set, 2 ways: maximal collision pressure
    (64 * 8, 64, 8),      # one set, 8 ways (the MEE associativity)
    (64 * 4 * 4, 64, 4),  # 4 sets x 4 ways
    (64 * 8 * 16, 64, 8),  # 16 sets x 8 ways
])

#: (line_index, is_write) streams over a small line space so sets
#: collide, lines re-touch after eviction, and dirty lines churn
streams = st.lists(
    st.tuples(st.integers(0, 63), st.booleans()),
    min_size=0, max_size=300,
)


def both(geometry):
    size, line, ways = geometry
    return (SetAssociativeCache(size, line, ways),
            FastSetAssociativeCache(size, line, ways))


def assert_same_state(reference, fast, line_space=64, line_bytes=64):
    """Residency and dirty state agree line for line; flush order
    agrees exactly (sets ascending, LRU-oldest first)."""
    for line in range(line_space):
        address = line * line_bytes
        assert fast.contains(address) == reference.contains(address), line
    assert fast.flush() == reference.flush()


def stats_tuple(cache):
    s = cache.stats
    return (s.hits, s.misses, s.evictions, s.dirty_evictions)


@settings(max_examples=60, deadline=None)
@given(geometry=geometries, stream=streams)
def test_scalar_access_matches_reference(geometry, stream):
    reference, fast = both(geometry)
    for line, is_write in stream:
        address = line * geometry[1]
        assert fast.access(address, is_write) == reference.access(address, is_write)
    assert stats_tuple(fast) == stats_tuple(reference)
    assert_same_state(reference, fast, line_bytes=geometry[1])


@settings(max_examples=60, deadline=None)
@given(geometry=geometries, stream=streams)
def test_access_many_matches_sequential_reference(geometry, stream):
    reference, fast = both(geometry)
    addresses = np.array([line * geometry[1] for line, _ in stream],
                         dtype=np.int64)
    writes = np.array([w for _, w in stream], dtype=bool)
    hits, writebacks = fast.access_many(addresses, writes)
    expected = [reference.access(int(a), bool(w))
                for a, w in zip(addresses, writes)]
    assert hits.tolist() == [hit for hit, _ in expected]
    assert writebacks.tolist() == [
        -1 if wb is None else wb for _, wb in expected]
    assert stats_tuple(fast) == stats_tuple(reference)
    assert_same_state(reference, fast, line_bytes=geometry[1])


@settings(max_examples=60, deadline=None)
@given(geometry=geometries, stream=streams,
       data=st.data())
def test_interleaved_access_retouch_matches_reference(geometry, stream, data):
    """Mixed scalar accesses and retouches (the batch rewriters' hit-run
    coalescing): a retouch replays guaranteed hits of a line the caller
    just touched."""
    reference, fast = both(geometry)
    for line, is_write in stream:
        address = line * geometry[1]
        assert fast.access(address, is_write) == reference.access(address, is_write)
        if data.draw(st.booleans()):
            count = data.draw(st.integers(1, 9))
            retouch_write = data.draw(st.booleans())
            reference.retouch(address, retouch_write, count)
            fast.retouch(address, retouch_write, count)
    assert stats_tuple(fast) == stats_tuple(reference)
    assert_same_state(reference, fast, line_bytes=geometry[1])


@settings(max_examples=40, deadline=None)
@given(geometry=geometries, first=streams, second=streams)
def test_mixed_batched_and_scalar_calls_share_state(geometry, first, second):
    """A batch, then scalar accesses, then another batch — the LRU clock
    and stats stay coherent across call styles."""
    reference, fast = both(geometry)
    for chunk, batched in ((first, True), (second, False), (first, True)):
        if batched:
            addresses = np.array([line * geometry[1] for line, _ in chunk],
                                 dtype=np.int64)
            writes = np.array([w for _, w in chunk], dtype=bool)
            hits, writebacks = fast.access_many(addresses, writes)
            expected = [reference.access(int(a), bool(w))
                        for a, w in zip(addresses, writes)]
            assert hits.tolist() == [h for h, _ in expected]
            assert writebacks.tolist() == [
                -1 if wb is None else wb for _, wb in expected]
        else:
            for line, is_write in chunk:
                address = line * geometry[1]
                assert (fast.access(address, is_write)
                        == reference.access(address, is_write))
    assert stats_tuple(fast) == stats_tuple(reference)
    assert_same_state(reference, fast, line_bytes=geometry[1])


class TestMeeSpeculation:
    """The MEE rewriter's speculative whole-batch programs on top of
    the kernel: validated speculation, heuristic failure + sequential
    fallback, and warm-cache continuation must all be bit-identical to
    the scalar reference rewriter."""

    @staticmethod
    def _assert_batch_matches(addresses_writes):
        from repro import perf
        from repro.mem.batch import RequestBatch
        from repro.mem.trace import MemoryRequest
        from repro.protection.trace_rewriter import MeeTraceRewriter

        trace = [MemoryRequest(a, 64, w) for a, w in addresses_writes]
        batch = RequestBatch.from_requests(trace)
        fast = MeeTraceRewriter()
        out = fast.rewrite_batch(batch)
        with perf.scalar_mode():
            reference = MeeTraceRewriter()
            ref = reference.rewrite(trace)
        assert out.to_requests() == ref
        assert fast.flush_batch().to_requests() == reference.flush()

    def test_monotone_stream_validates_first_attempt(self):
        self._assert_batch_matches(
            [(i * 64, i % 3 == 0) for i in range(4096)])

    def test_eviction_revisit_pattern_falls_back_exactly(self):
        """Re-touching lines after eviction defeats the pressure
        heuristic; the fallback must still be exact."""
        addresses = []
        for lap in range(6):
            for i in range(0, 3000, 7):
                addresses.append(((i * 512 * 37) % (1 << 26), i % 2 == 0))
        self._assert_batch_matches(addresses)

    def test_warm_cache_across_batches(self):
        """A second batch speculates against non-cold state (residency
        probes active) and must continue the same cache history."""
        from repro import perf
        from repro.mem.batch import RequestBatch
        from repro.mem.trace import MemoryRequest
        from repro.protection.trace_rewriter import MeeTraceRewriter

        first = [MemoryRequest(i * 64, 64, i % 2 == 0) for i in range(2048)]
        second = [MemoryRequest((2048 + i // 2) * 64, 64, i % 3 == 0)
                  for i in range(2048)]
        fast = MeeTraceRewriter()
        got = (fast.rewrite_batch(RequestBatch.from_requests(first)).to_requests()
               + fast.rewrite_batch(RequestBatch.from_requests(second)).to_requests()
               + fast.flush_batch().to_requests())
        with perf.scalar_mode():
            reference = MeeTraceRewriter()
            want = (reference.rewrite(first) + reference.rewrite(second)
                    + reference.flush())
        assert got == want


class TestKernelBasics:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            FastSetAssociativeCache(100, 64, 4)

    def test_empty_batch(self):
        fast = FastSetAssociativeCache(4096, 64, 4)
        hits, writebacks = fast.access_many(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        assert len(hits) == 0 and len(writebacks) == 0
        assert stats_tuple(fast) == (0, 0, 0, 0)

    def test_contains_many_is_pure(self):
        fast = FastSetAssociativeCache(4096, 64, 4)
        fast.access(0, True)
        fast.access(64, False)
        probe = np.array([0, 64, 128], dtype=np.int64)
        assert fast.contains_many(probe).tolist() == [True, True, False]
        assert stats_tuple(fast) == (0, 2, 0, 0)

    def test_writeback_order_within_one_batch(self):
        """Dirty evictions surface at the exact access that caused them,
        in stream order — one set, 2 ways, three conflicting lines."""
        fast = FastSetAssociativeCache(64 * 2, 64, 2)
        reference = SetAssociativeCache(64 * 2, 64, 2)
        addresses = np.array([0, 64, 128, 192, 0], dtype=np.int64)
        writes = np.array([True, True, False, False, False], dtype=bool)
        hits, writebacks = fast.access_many(addresses, writes)
        expected = [reference.access(int(a), bool(w))
                    for a, w in zip(addresses, writes)]
        assert writebacks.tolist() == [
            -1 if wb is None else wb for _, wb in expected]
        assert writebacks[2] == 0 and writebacks[3] == 64
