"""Checkpoint *migration* equivalence: a successor that resumes from
an envelope another process uploaded mid-unit must produce rows — and
the ``rows_digest`` the coordinator verifies commits against — that
are bit-identical to a run that was never interrupted.

This is the distributed sibling of
``tests/property/test_checkpoint_equivalence.py``: there the envelope
travels through a file on disk; here it travels through the
``on_checkpoint_state`` hook exactly as the worker uploads it to the
coordinator's ``/v1/checkpoint`` — a plain dict, no file in between.
If the dict form drifted from the disk form (a stale field, a mutation
by the first run after capture), failover would stop being
deterministic and duplicate-commit verification would start rejecting
correct successors.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.protocol import rows_digest
from repro.experiments.executors import pipeline_rows
from repro.mem.pipeline import PipelineCheckpointed

SCHEME_SETS = (["np"], ["np", "bp"], ["np", "guardnn-ci"])

params_strategy = st.one_of(
    st.fixed_dictionaries({
        "workload": st.just("streaming"),
        "nbytes": st.integers(1, 24).map(lambda n: n * 1024),
        "write_fraction": st.sampled_from([0.0, 0.25, 0.5]),
        "schemes": st.sampled_from(SCHEME_SETS),
        "chunk_requests": st.sampled_from([8, 32, 128]),
    }),
    st.fixed_dictionaries({
        "workload": st.just("random"),
        "n_requests": st.integers(16, 400),
        "span_bytes": st.sampled_from([1 << 16, 1 << 20]),
        "seed": st.integers(0, 3),
        "schemes": st.sampled_from(SCHEME_SETS),
        "chunk_requests": st.sampled_from([8, 64]),
    }),
)


def _interrupt_then_resume(params, stop_after):
    """Run until ``stop_after`` envelopes have been captured, tear the
    run down, and resume a fresh run from the *last captured dict* —
    returning its rows, or None if the run finished before the
    interruption point (too few chunks to stop)."""
    envelopes = []

    def capture(state, chunks, requests_done):
        envelopes.append(dict(state))

    count = [0]

    def stop(*_args):
        count[0] += 1
        return count[0] >= stop_after

    try:
        pipeline_rows(dict(params), checkpoint_every=1,
                      on_checkpoint_state=capture, checkpoint_request=stop)
    except PipelineCheckpointed:
        assert envelopes, "interrupted without a captured envelope"
        return pipeline_rows(dict(params), resume_from=dict(envelopes[-1]))
    return None


@settings(max_examples=20, deadline=None)
@given(params=params_strategy, stop_after=st.integers(1, 6))
def test_resume_from_migrated_envelope_is_bit_identical(params, stop_after):
    reference = pipeline_rows(dict(params))
    resumed = _interrupt_then_resume(params, stop_after)
    if resumed is None:
        # finished before the interruption point: nothing to migrate,
        # but determinism itself must still hold
        resumed = pipeline_rows(dict(params))
    assert resumed == reference
    assert rows_digest([resumed]) == rows_digest([reference])


@settings(max_examples=10, deadline=None)
@given(params=params_strategy)
def test_every_seam_resumes_to_the_same_digest(params):
    """Whichever seam the first holder died at — first envelope, last,
    anywhere between — the successor's committed digest is the same.
    The coordinator's duplicate-commit verification depends on this:
    a straggler's late commit and a resumed successor's commit must
    be byte-equal."""
    reference = pipeline_rows(dict(params))
    digest = rows_digest([reference])

    envelopes = []
    pipeline_rows(dict(params), checkpoint_every=1,
                  on_checkpoint_state=lambda s, c, d: envelopes.append(dict(s)))
    # sample at most 3 seams (first, middle, last) to bound runtime
    picks = sorted({0, len(envelopes) // 2, len(envelopes) - 1}) \
        if envelopes else []
    for seam in picks:
        resumed = pipeline_rows(dict(params),
                                resume_from=dict(envelopes[seam]))
        assert resumed == reference
        assert rows_digest([resumed]) == digest


def test_envelope_capture_does_not_alter_the_run():
    """The capture hook itself is not allowed to perturb results: a run
    that uploads an envelope at every seam finishes with the same rows
    as one that never checkpoints."""
    params = {"workload": "streaming", "nbytes": 1 << 14,
              "chunk_requests": 32, "schemes": ["np", "bp"]}
    plain = pipeline_rows(dict(params))
    seen = []
    hooked = pipeline_rows(dict(params), checkpoint_every=1,
                           on_checkpoint_state=lambda s, c, d: seen.append(c))
    assert hooked == plain
    assert seen, "no envelope captured at checkpoint_every=1"
