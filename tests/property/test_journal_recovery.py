"""Journal-recovery properties, hypothesis-driven.

Three invariants the durable control plane stands on:

1. **Prefix-closure** — journal validity is closed under byte
   truncation: whatever byte the power fails on, the surviving prefix
   loads (a torn tail is truncated and counted, never fatal, never
   trusted). Mid-file corruption is a *different* failure (bit flips,
   foreign writers) and is refused; a pure crash can only ever shorten
   the file.
2. **Recovery equivalence** — killing and recovering the coordinator
   after *every single commit* yields final rows and ``rows_digest``
   values bit-identical to a run that was never interrupted, for any
   sharding and any commit order.
3. **Torn/corrupt tails are truncated with a counted metric** —
   arbitrary garbage appended to a valid journal (the torn-tail shapes
   a real crash can produce) never changes the recovered state, and
   recovery reports ``journal_truncated``.
"""

from hypothesis import given, settings, strategies as st

from repro.distributed import CoordinatorState, Journal, replay
from repro.distributed import protocol
from repro.experiments.jobs import Job


def make_units(n_units, unit_jobs):
    return [[Job("simulate", f'{{"u": {u}, "i": {i}}}')
             for i in range(unit_jobs)]
            for u in range(n_units)]


def rows_for(jobs, salt=0):
    """Deterministic stand-in for executing a unit: pure function of
    the job identity, so any two processes 'computing' it agree."""
    return [[{"job": job.params_json, "salt": salt}] for job in jobs]


def build_state(units, path=None):
    state = CoordinatorState([list(u) for u in units], fingerprint="fp",
                             lease_seconds=10.0, journal_path=path)
    state._workers["w"] = state.clock()
    return state


def run_to_completion(units, path=None):
    """Commit every unit in lease order on one uninterrupted state."""
    state = build_state(units, path)
    while not state.done:
        lease = state.lease("w")
        state.commit("w", lease["unit"], lease["key"], lease["lease"],
                     rows_for(units[lease["unit"]]))
    results = state.results()
    digests = [unit.digest for unit in state._units]
    state.close()
    return results, digests


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 4), st.integers(1, 3), st.data())
def test_any_byte_prefix_loads(tmp_path_factory, n_units, unit_jobs, data):
    tmp = tmp_path_factory.mktemp("wal")
    path = str(tmp / "wal.jsonl")
    units = make_units(n_units, unit_jobs)
    run_to_completion(units, path)

    raw = open(path, "rb").read()
    cut = data.draw(st.integers(0, len(raw)), label="cut")
    prefix_path = str(tmp / "prefix.jsonl")
    with open(prefix_path, "wb") as handle:
        handle.write(raw[:cut])

    state = replay(prefix_path)   # must never raise on a pure truncation
    if state is not None:
        # whatever survived is internally consistent: every recovered
        # commit still hashes to its recorded digest
        for unit, commit in state.commits.items():
            rows = protocol.rows_from_wire(commit["rows"])
            assert protocol.rows_digest(rows) == commit["digest"]
            assert rows == rows_for(units[unit])


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 3))
def test_recovery_after_every_commit_is_bit_identical(
        tmp_path_factory, n_units, unit_jobs):
    tmp = tmp_path_factory.mktemp("wal")
    units = make_units(n_units, unit_jobs)
    reference_rows, reference_digests = run_to_completion(units)

    # the crashiest possible coordinator: a fresh process per commit
    path = str(tmp / "wal.jsonl")
    for round_number in range(n_units):
        state = build_state(units, path)
        assert state.epoch == round_number
        lease = state.lease("w")
        assert lease["event"] == "lease"
        state.commit("w", lease["unit"], lease["key"], lease["lease"],
                     rows_for(units[lease["unit"]]))
        state.close()

    final = build_state(units, path)
    assert final.done
    assert final.results() == reference_rows
    assert [unit.digest for unit in final._units] == reference_digests
    assert final.counters["journal_replayed_units"] == n_units
    final.close()


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 3), st.binary(min_size=1, max_size=60),
       st.booleans())
def test_garbage_tail_truncated_and_counted(tmp_path_factory, n_units,
                                            garbage, newline):
    tmp = tmp_path_factory.mktemp("wal")
    path = str(tmp / "wal.jsonl")
    units = make_units(n_units, 1)
    run_to_completion(units, path)
    before = replay(path)

    # the shapes a crash mid-write can leave: a suffix with no newline
    # (torn tail) or a complete-looking but unparseable final line. The
    # 0xff prefix keeps random bytes from accidentally forming JSON —
    # parseable-but-wrong records are mid-file damage, which is refused,
    # not truncated (covered in tests/distributed/test_journal.py).
    tail = b"\xff" + garbage.replace(b"\n", b"") + (b"\n" if newline else b"")
    with open(path, "ab") as handle:
        handle.write(tail)

    journal, state = Journal.recover(
        path, "fp", [u.key for u in build_state(units)._units])
    journal.close()
    assert journal.counters["journal_truncated"] == 1
    assert state.commits.keys() == before.commits.keys()
    for unit in before.commits:
        assert state.commits[unit]["digest"] == before.commits[unit]["digest"]
