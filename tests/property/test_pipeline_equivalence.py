"""Streaming-pipeline equivalence: chunked == monolithic, bit for bit.

The :class:`~repro.mem.pipeline.TracePipeline` promises that fusing
generate → rewrite → time per chunk changes *nothing* observable:
cycles, bursts, per-kind traffic, DRAM bank statistics, and the
metadata-cache state all match a monolithic run over the whole trace,
for every chunk size — including seams that split a coalesced
same-VN-unit hit-run or a DRAM row-hit run mid-way. These tests pin
that contract, plus the generator-level contracts underneath it
(vectorized batch == scalar objects; slicing never changes a stream).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.mem.batch import RequestBatch
from repro.mem.controller import MemoryController
from repro.mem.pipeline import TracePipeline, run_materialized
from repro.workloads import (
    BpMetadataSpec,
    RandomSpec,
    StreamingSpec,
    build_trace_spec,
)
from repro.workloads.generators import (
    bp_metadata_batch,
    bp_metadata_trace,
    random_batch,
    random_trace,
    streaming_batch,
    streaming_trace,
)
from repro.accel.zoo_ext import LlmGeometry
from repro.workloads.llm import LlmDecodeSpec, llm_decode_spec

SCHEMES = ("np", "guardnn-ci", "bp")

#: a test-sized decoder geometry: the same address-map structure as
#: gpt2-xl (embedding table / per-layer weights / KV rings) at a size
#: hypothesis can afford hundreds of end-to-end runs of
TINY_LM = LlmGeometry("tiny-lm", d_model=64, layers=2, heads=2, d_ff=128,
                      vocab=512, max_seq=64)

spec_strategy = st.one_of(
    st.builds(StreamingSpec,
              nbytes=st.integers(1, 80).map(lambda n: n * 1024),
              write_fraction=st.sampled_from([0.0, 0.25, 0.3, 0.4, 0.7, 1.0])),
    st.builds(RandomSpec,
              n_requests=st.integers(1, 1200),
              span_bytes=st.sampled_from([1 << 16, 1 << 22, 1 << 26]),
              seed=st.integers(0, 5),
              write_fraction=st.sampled_from([0.0, 0.3, 0.5])),
    st.builds(BpMetadataSpec, nbytes=st.integers(1, 60).map(lambda n: n * 1024)),
    st.builds(LlmDecodeSpec, geometry=st.just(TINY_LM),
              layers=st.integers(1, 2), tokens=st.integers(1, 3),
              context=st.integers(1, 32)),
)


def _run(spec, scheme, chunk_requests):
    pipeline = TracePipeline(spec, schemes=(scheme,),
                             chunk_requests=chunk_requests)
    outcome = pipeline.run()[scheme]
    rewriter = pipeline.rewriters[scheme]
    cache_state = rewriter.cache.flush() if scheme == "bp" else None
    return outcome, pipeline.controllers[scheme].dram.stats, cache_state


@settings(max_examples=25, deadline=None)
@given(spec=spec_strategy, scheme=st.sampled_from(SCHEMES),
       chunk=st.integers(1, 4096), data=st.data())
def test_chunked_pipeline_matches_monolithic(spec, scheme, chunk, data):
    """Any chunking of any generator under any scheme reproduces the
    monolithic run exactly — cycles, bursts, traffic, DRAM stats, and
    (for BP) the final metadata-cache contents."""
    chunk = min(chunk, max(spec.total_requests, 1))
    mono, mono_dram, mono_cache = _run(spec, scheme, 10 ** 9)
    part, part_dram, part_cache = _run(spec, scheme, chunk)
    assert (part.result.cycles, part.result.bursts, part.result.requests) == (
        mono.result.cycles, mono.result.bursts, mono.result.requests)
    assert part.result.stats.read_bytes == mono.result.stats.read_bytes
    assert part.result.stats.write_bytes == mono.result.stats.write_bytes
    assert part_dram == mono_dram
    assert part_cache == mono_cache


@settings(max_examples=10, deadline=None)
@given(spec=spec_strategy, scheme=st.sampled_from(SCHEMES))
def test_pipeline_matches_materialized_object_path(spec, scheme):
    """The streamed run equals the pre-pipeline path: materialize the
    whole object trace, rewrite it in one piece, time it in one piece."""
    streamed = TracePipeline(spec, schemes=(scheme,),
                             chunk_requests=257).run()[scheme].result
    materialized = run_materialized(spec, scheme)
    assert (streamed.cycles, streamed.bursts) == (
        materialized.cycles, materialized.bursts)
    assert streamed.stats.read_bytes == materialized.stats.read_bytes
    assert streamed.stats.write_bytes == materialized.stats.write_bytes


def test_chunk_seam_splits_coalesced_hit_run():
    """A seam straight through an 8-request VN-unit run (and through the
    DRAM row-hit runs it produces) must not perturb anything: chunk
    sizes prime to every run length, vs the monolithic run."""
    for chunk in (1, 3, 5, 7, 13, 67, 1021):
        spec = StreamingSpec(1 << 16, write_fraction=0.4)
        mono, mono_dram, mono_cache = _run(spec, "bp", 10 ** 9)
        part, part_dram, part_cache = _run(spec, "bp", chunk)
        assert (part.result.cycles, part.result.bursts) == (
            mono.result.cycles, mono.result.bursts), chunk
        assert part_dram == mono_dram, chunk
        assert part_cache == mono_cache, chunk


def test_multischeme_shared_pass_equals_solo_runs():
    """Forking one generated stream through several schemes gives each
    scheme exactly its solo-run result."""
    schemes = ("np", "guardnn-c", "guardnn-ci", "bp")
    shared = TracePipeline(StreamingSpec(1 << 16, write_fraction=0.25),
                           schemes=schemes, chunk_requests=509).run()
    for scheme in schemes:
        solo = TracePipeline(StreamingSpec(1 << 16, write_fraction=0.25),
                             schemes=(scheme,), chunk_requests=509).run()[scheme]
        assert (shared[scheme].result.cycles, shared[scheme].result.bursts) == (
            solo.result.cycles, solo.result.bursts), scheme


@settings(max_examples=20, deadline=None)
@given(spec=spec_strategy, splits=st.lists(st.integers(0, 1 << 16),
                                           min_size=0, max_size=6))
def test_spec_slicing_is_stream_stable(spec, splits):
    """``batch(0, n)`` equals the concatenation of its pieces for any
    split points — generation never depends on the chunking."""
    n = spec.total_requests
    points = sorted({min(p, n) for p in splits} | {0, n})
    parts = RequestBatch()
    for lo, hi in zip(points, points[1:]):
        parts.extend(spec.batch(lo, hi))
    assert parts == spec.batch(0, n)


@settings(max_examples=15, deadline=None)
@given(spec=spec_strategy, splits=st.lists(st.integers(1, 4096),
                                           min_size=1, max_size=4))
def test_controller_session_matches_run_batch(spec, splits):
    """Feeding a request stream to a :class:`ControllerSession` in
    arbitrary pieces reproduces one ``run_batch`` call exactly."""
    whole = spec.batch()
    mono_ctrl = MemoryController()
    mono = mono_ctrl.run_batch(whole)

    part_ctrl = MemoryController()
    session = part_ctrl.session()
    cursor = 0
    for size in splits:
        session.feed(spec.batch(cursor, min(cursor + size, len(whole))))
        cursor = min(cursor + size, len(whole))
    session.feed(spec.batch(cursor, len(whole)))
    part = session.finish()
    assert (part.cycles, part.requests, part.bursts) == (
        mono.cycles, mono.requests, mono.bursts)
    assert part.stats.read_bytes == mono.stats.read_bytes
    assert part.stats.write_bytes == mono.stats.write_bytes
    assert part_ctrl.dram.stats == mono_ctrl.dram.stats


# -- generator-level contracts ---------------------------------------------


@settings(max_examples=25, deadline=None)
@given(nbytes=st.integers(0, 200).map(lambda n: n * 64),
       write_fraction=st.floats(0.0, 1.0, allow_nan=False),
       base=st.sampled_from([0, 4096, 1 << 30]))
def test_streaming_batch_matches_scalar_trace(nbytes, write_fraction, base):
    scalar = streaming_trace(nbytes, base=base, write_fraction=write_fraction)
    batch = streaming_batch(nbytes, base=base, write_fraction=write_fraction)
    assert batch.to_requests() == scalar


def test_streaming_write_cadence_is_exact():
    """Non-reciprocal fractions land exactly ``round(n * f)`` writes
    (the old ``int(1/f)`` cadence turned 0.3 into every-3rd = 33%)."""
    for fraction, expected in ((0.3, 300), (0.4, 400), (0.25, 250),
                               (0.75, 750), (1.0, 1000), (0.0, 0)):
        trace = streaming_trace(64 * 1000, write_fraction=fraction)
        assert sum(r.is_write for r in trace) == expected, fraction


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1 << 32), n=st.integers(0, 600),
       write_fraction=st.sampled_from([0.0, 0.3, 0.5, 1.0]))
def test_random_generator_seeded_equivalence(seed, n, write_fraction):
    """Same seed, same trace: the scalar loop and the one-array-draw
    batch generator consume the rng stream identically."""
    scalar = random_trace(n, 1 << 22, np.random.default_rng(seed),
                          write_fraction=write_fraction)
    batch = random_batch(n, 1 << 22, np.random.default_rng(seed),
                         write_fraction=write_fraction)
    assert batch.to_requests() == scalar


@settings(max_examples=20, deadline=None)
@given(nbytes=st.integers(0, 12000))
def test_bp_metadata_batch_matches_scalar_trace(nbytes):
    assert bp_metadata_batch(nbytes).to_requests() == bp_metadata_trace(nbytes)


@settings(max_examples=10, deadline=None)
@given(layers=st.integers(1, 2), tokens=st.integers(1, 4),
       context=st.integers(1, 64), seed=st.integers(0, 9))
def test_llm_decode_vectorized_matches_scalar_mapping(layers, tokens, context,
                                                      seed):
    """The numpy index-arithmetic rendering equals the per-request
    scalar mapping (what ``REPRO_SCALAR=1`` runs)."""
    spec = LlmDecodeSpec(TINY_LM, layers=layers, tokens=tokens,
                         context=context, seed=seed)
    vectorized = spec.batch()
    with perf.scalar_mode():
        reference = spec.batch()
    assert vectorized == reference


def test_llm_decode_real_geometry_slices():
    """The registered gpt2 geometry renders and slices consistently
    (one deterministic case at real size; the exhaustive sweeps use
    the tiny geometry above)."""
    spec = llm_decode_spec("gpt2", layers=1, tokens=1, context=64)
    n = spec.total_requests
    assert n == spec.requests_per_token
    parts = RequestBatch()
    for chunk in spec.chunks(10007):
        parts.extend(chunk)
    assert parts == spec.batch(0, n)


def test_build_trace_spec_registry():
    assert isinstance(build_trace_spec("streaming", nbytes=4096), StreamingSpec)
    assert isinstance(build_trace_spec("random", n_requests=4, span_bytes=4096),
                      RandomSpec)
    assert isinstance(build_trace_spec("bp-metadata", nbytes=4096),
                      BpMetadataSpec)
    assert build_trace_spec("gpt2", layers=1, context=4).total_requests > 0
    with pytest.raises(KeyError):
        build_trace_spec("lenet-5")
