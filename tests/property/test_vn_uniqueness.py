"""THE GuardNN invariant: under any legal instruction sequence, the
(address, VN) pair fed to AES-CTR never repeats for a session key.

Counter-mode security collapses on pad reuse, and GuardNN's whole point
is that a handful of on-chip counters suffices to keep counter blocks
unique without storing VNs in DRAM. We drive the *functional device*
with hypothesis-generated instruction programs and check the MPU's VN
log for repeats.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.device import GuardNNDevice
from repro.core.errors import GuardNNError
from repro.core.host import HonestHost
from repro.core.isa import Forward, SetInput, SetReadCTR, SetWeight
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg
from repro.protection.counters import CounterState


# --- counter-level property ---------------------------------------------

ops = st.lists(st.sampled_from(["input", "forward", "weight"]), min_size=1, max_size=200)


@settings(max_examples=50, deadline=None)
@given(sequence=ops)
def test_counter_vns_never_repeat_across_writes(sequence):
    """Every write the scheme can ever make carries a fresh VN."""
    state = CounterState()
    seen = set()
    state.on_set_input()  # a session always starts with an input
    seen.add(state.input_vn().value)
    for op in sequence:
        if op == "input":
            state.on_set_input()
            vn = state.input_vn().value
        elif op == "forward":
            vn = state.next_forward_vn().value
        else:
            state.on_set_weight()
            vn = state.weight_vn().value
        assert vn not in seen, f"VN reuse after {op}"
        seen.add(vn)


# --- device-level property ----------------------------------------------

def _fresh_stack(seed: bytes):
    ca = ManufacturerCA(HmacDrbg(b"prop-ca"))
    device = GuardNNDevice(b"prop-dev", ca, seed=seed, dram_bytes=1 << 18,
                           debug_log_vns=True)
    host = HonestHost(device)
    user = UserSession(ca.root_public, HmacDrbg(b"prop-user" + seed))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=False)
    return device, host, user


program = st.lists(
    st.one_of(
        st.tuples(st.just("set_input"), st.integers(0, 7)),
        st.tuples(st.just("set_weight"), st.integers(0, 7)),
        st.tuples(st.just("forward"), st.integers(0, 7)),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=20, deadline=None)
@given(steps=program)
def test_device_never_reuses_address_vn_pairs(steps):
    """Arbitrary (even nonsensical) host programs: every (block address,
    VN) pair in the MPU's write log is unique."""
    device, host, user = _fresh_stack(b"seed")
    rng = np.random.default_rng(0)
    data = rng.integers(-10, 10, size=(8, 8), dtype=np.int8)
    for op, slot in steps:
        base = slot * 512
        try:
            if op == "set_input":
                device.execute(SetInput(base=base, blob=user.seal_input(data)))
            elif op == "set_weight":
                device.execute(SetWeight(base=base, blob=user.seal_weights(data)))
            else:
                device.execute(Forward(input_base=base, weight_base=base,
                                       output_base=((slot + 1) % 8) * 512,
                                       m=8, k=8, n=8))
        except GuardNNError:
            continue  # hostile programs may fail; leaks are what matter
    log = [(e.block_address, e.vn) for e in device.mpu.vn_log]
    assert len(log) == len(set(log)), "pad reuse: (address, VN) repeated"
