"""Cross-module integration: full protocol flows and multi-session use."""

import numpy as np
import pytest

from repro.core.device import GuardNNDevice
from repro.core.host import HonestHost, MlpSpec
from repro.core.isa import SignOutput
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg
from repro.workloads.generators import random_mlp_spec


class TestFullProtocol:
    def test_two_users_sequential_sessions(self, manufacturer, device, rng):
        """Second session re-keys everything; first user's secrets are
        unrecoverable afterwards."""
        host = HonestHost(device)

        alice = UserSession(manufacturer.root_public, HmacDrbg(b"alice"))
        alice.authenticate_device(host.fetch_device_info())
        host.establish_session(alice)
        spec_a = random_mlp_spec([32, 8], rng)
        x_a = rng.integers(-15, 15, size=(2, 32), dtype=np.int8)
        out_a, ok_a = host.compile_and_run(alice, spec_a, x_a)
        assert ok_a
        dram_after_alice = bytes(device.untrusted_memory.data)

        bob_host = HonestHost(device)
        bob = UserSession(manufacturer.root_public, HmacDrbg(b"bob"))
        bob.authenticate_device(bob_host.fetch_device_info())
        bob_host.establish_session(bob)
        # InitSession cleared DRAM: Alice's ciphertext is gone
        assert bytes(device.untrusted_memory.data) != dram_after_alice
        spec_b = random_mlp_spec([16, 4], rng)
        x_b = rng.integers(-15, 15, size=(1, 16), dtype=np.int8)
        out_b, ok_b = bob_host.compile_and_run(bob, spec_b, x_b)
        assert ok_b
        assert np.array_equal(out_b, spec_b.reference_forward(x_b))

    def test_multiple_inputs_same_weights(self, established, rng):
        """One session, many inputs (the SetInput/CTR_IN path)."""
        device, user, host = established
        spec = random_mlp_spec([32, 16, 8], rng)
        host._layer_shapes = [w.shape for w in spec.weights]
        host._shift = spec.shift
        host.load_weights(user, spec)
        from repro.core.isa import ExportOutput, SetReadCTR

        for trial in range(3):
            x = rng.integers(-15, 15, size=(2, 32), dtype=np.int8)
            host.load_input(user, x)
            out_base, out_size = host.run_inference(spec, batch=2)
            device.execute(SetReadCTR(base=out_base, size=out_size,
                                      ctr_fw=len(spec.weights)))
            host.instruction_log.append(SetReadCTR(base=out_base, size=out_size,
                                                   ctr_fw=len(spec.weights)))
            sealed = device.execute(ExportOutput(base=out_base, size=out_size))
            # keep host log consistent (compile_and_run does this itself)
            host.instruction_log.append(ExportOutput(base=out_base, size=out_size))
            out = user.open_output(sealed, (2, 8))
            assert np.array_equal(out, spec.reference_forward(x))

    def test_confidentiality_only_session_end_to_end(self, manufacturer, rng):
        device = GuardNNDevice(b"c-only", manufacturer, seed=b"c-only-seed",
                               dram_bytes=1 << 20)
        host = HonestHost(device)
        user = UserSession(manufacturer.root_public, HmacDrbg(b"c-user"))
        user.authenticate_device(host.fetch_device_info())
        host.establish_session(user, enable_integrity=False)
        spec = random_mlp_spec([64, 32, 8], rng)
        x = rng.integers(-15, 15, size=(4, 64), dtype=np.int8)
        out, ok = host.compile_and_run(user, spec, x)
        assert np.array_equal(out, spec.reference_forward(x))
        assert ok  # attestation still works (hashes are kept either way)

    def test_large_mlp_round_trip(self, established, rng):
        """A bigger functional workload (chunk-spanning tensors)."""
        device, user, host = established
        spec = random_mlp_spec([256, 128, 64, 10], rng)
        x = rng.integers(-15, 15, size=(16, 256), dtype=np.int8)
        out, ok = host.compile_and_run(user, spec, x)
        assert np.array_equal(out, spec.reference_forward(x))
        assert ok


class TestSimulationPipeline:
    """The ASIC-simulation stack end to end over the whole zoo."""

    @pytest.mark.parametrize("name", ["alexnet", "googlenet", "dlrm"])
    def test_all_schemes_run(self, name):
        from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
        from repro.accel.models import build_model
        from repro.protection.guardnn import GuardNNProtection
        from repro.protection.mee import BaselineMEE
        from repro.protection.none import NoProtection

        accel = AcceleratorModel(TPU_V1_CONFIG)
        model = build_model(name)
        base = accel.run(model, NoProtection())
        for scheme in (GuardNNProtection(False), GuardNNProtection(True), BaselineMEE()):
            result = accel.run(model, scheme)
            assert result.total_cycles >= base.total_cycles
            assert 1.0 <= result.normalized_to(base) < 2.0

    def test_traffic_increases_match_paper_shape(self):
        from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
        from repro.accel.models import build_model
        from repro.protection.guardnn import GuardNNProtection
        from repro.protection.mee import BaselineMEE

        accel = AcceleratorModel(TPU_V1_CONFIG)
        model = build_model("vgg16")
        bp = accel.run(model, BaselineMEE())
        ci = accel.run(model, GuardNNProtection(True))
        assert 0.15 < bp.traffic_increase < 0.50  # paper: 35.3% avg
        assert 0.015 < ci.traffic_increase < 0.04  # paper: 2.4% avg
