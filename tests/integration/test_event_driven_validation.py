"""Cross-validation: the analytic protection models vs the mechanistic
trace rewriters timed on the event-driven DDR4 controller.

The paper's Figure 3 numbers come from SCALE-Sim + Ramulator; our
Figure 3 bench uses the fast analytic pipeline. This test closes the
loop: for a representative layer-sized streaming workload, the *timed*
(event-driven) slowdowns must show the same ordering and comparable
magnitudes as the analytic model's traffic increases.
"""

import pytest

from repro.accel.scheduler import LayerTraffic
from repro.mem.controller import MemoryController
from repro.mem.trace import TraceStats
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE
from repro.protection.trace_rewriter import GuardNNTraceRewriter, MeeTraceRewriter
from repro.workloads.generators import streaming_trace


WORKLOAD_BYTES = 1 << 20  # one VGG-conv-sized tensor stream
WRITE_FRACTION = 0.25


@pytest.fixture(scope="module")
def timed():
    """Cycles for NP / GuardNN_CI / BP on the same data stream."""
    results = {}
    base_trace = streaming_trace(WORKLOAD_BYTES, write_fraction=WRITE_FRACTION)
    results["NP"] = MemoryController().run_trace(base_trace)

    gnn = GuardNNTraceRewriter(integrity=True)
    protected_gnn = gnn.rewrite(base_trace) + gnn.flush()
    results["GuardNN_CI"] = MemoryController().run_trace(protected_gnn)

    mee = MeeTraceRewriter()
    protected = mee.rewrite(base_trace) + mee.flush()
    results["BP"] = MemoryController().run_trace(protected)
    return results


class TestEventDrivenOrdering:
    def test_cycle_ordering(self, timed):
        assert timed["NP"].cycles < timed["GuardNN_CI"].cycles < timed["BP"].cycles

    def test_guardnn_slowdown_small(self, timed):
        slowdown = timed["GuardNN_CI"].cycles / timed["NP"].cycles
        assert slowdown < 1.10  # memory-only view; whole-net is ~1.02

    def test_bp_slowdown_substantial(self, timed):
        """Memory-only view: BP pays both extra bytes *and* row-locality
        damage from interleaved metadata — harsher than the whole-network
        ~1.25-1.3x, where compute overlap absorbs part of it."""
        slowdown = timed["BP"].cycles / timed["NP"].cycles
        assert 1.15 < slowdown < 2.2


class TestAnalyticAgreement:
    def _traffic(self, nbytes=WORKLOAD_BYTES, wf=WRITE_FRACTION):
        reads = int(nbytes * (1 - wf))
        writes = nbytes - reads
        return LayerTraffic(layer_name="L", weight_reads=0, input_reads=reads,
                            output_writes=writes, input_size=reads, output_size=writes)

    def test_guardnn_traffic_within_tolerance(self):
        """Mechanistic vs analytic GuardNN_CI metadata: within ~35%
        (line-granular fetches + dirty-line writebacks vs exact
        per-chunk tag accounting)."""
        base_trace = streaming_trace(WORKLOAD_BYTES, write_fraction=WRITE_FRACTION)
        gnn = GuardNNTraceRewriter(integrity=True)
        rewritten = gnn.rewrite(base_trace) + gnn.flush()
        stats = TraceStats()
        for r in rewritten:
            stats.add(r)
        mechanistic = stats.metadata_bytes

        analytic = GuardNNProtection(integrity=True).layer_overhead(
            self._traffic(), "forward", False
        ).total_bytes
        assert mechanistic == pytest.approx(analytic, rel=0.35)

    def test_bp_traffic_within_band(self):
        """Mechanistic vs analytic BP: same band (they model eviction
        details differently; agreement within 2x, both far above
        GuardNN)."""
        base_trace = streaming_trace(WORKLOAD_BYTES, write_fraction=WRITE_FRACTION)
        mee = MeeTraceRewriter()
        rewritten = mee.rewrite(base_trace) + mee.flush()
        stats = TraceStats()
        for r in rewritten:
            stats.add(r)
        mechanistic = stats.metadata_bytes

        analytic = BaselineMEE().layer_overhead(self._traffic(), "forward", False).total_bytes
        assert 0.5 < mechanistic / analytic < 2.0
