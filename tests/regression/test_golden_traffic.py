"""Golden-value regression suite for the paper-facing traffic numbers.

Pins, as exact integers, the per-network cycle counts and the
per-``RequestKind`` metadata breakdown (VN / MAC / TREE bytes) of every
Figure 3 inference and training workload under all four protection
points, plus the full per-layer breakdown for AlexNet. These are the
quantities behind Figure 3's normalized execution time and the
Section III-C traffic-increase table: a scheduler, scheme, or model-zoo
refactor that moves any paper number fails here loudly instead of
drifting silently.

If a change is *supposed* to move the numbers, regenerate with
``python scripts/regen_golden_traffic.py`` and say so in the commit.
"""

import json
import os

import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.mem.trace import RequestKind
from repro.protection import build_scheme

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_traffic.json")

with open(GOLDEN_PATH) as f:
    GOLDEN = json.load(f)

SCHEMES = ["np", "guardnn-c", "guardnn-ci", "bp"]

pytestmark = pytest.mark.regression


def _summarize(result):
    breakdown = result.metadata_breakdown
    return {
        "total_cycles": result.total_cycles,
        "data_bytes": result.total_data_bytes,
        "metadata_bytes": result.total_metadata_bytes,
        "vn_bytes": breakdown.get(RequestKind.VN, 0),
        "mac_bytes": breakdown.get(RequestKind.MAC, 0),
        "tree_bytes": breakdown.get(RequestKind.TREE, 0),
    }


@pytest.fixture(scope="module")
def accel():
    return AcceleratorModel(TPU_V1_CONFIG)


@pytest.mark.parametrize("network", sorted(GOLDEN["inference"]))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_inference_traffic_pinned(accel, network, scheme):
    result = accel.run(build_model(network), build_scheme(scheme))
    assert _summarize(result) == GOLDEN["inference"][network][scheme], (
        f"{network}/{scheme} inference traffic moved; if deliberate, "
        "regenerate with scripts/regen_golden_traffic.py")


@pytest.mark.parametrize("network", sorted(GOLDEN["training"]))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_training_traffic_pinned(accel, network, scheme):
    result = accel.run(build_model(network), build_scheme(scheme),
                       training=True, batch=GOLDEN["training_batch"])
    assert _summarize(result) == GOLDEN["training"][network][scheme], (
        f"{network}/{scheme} training traffic moved; if deliberate, "
        "regenerate with scripts/regen_golden_traffic.py")


@pytest.mark.parametrize("scheme", ["bp", "guardnn-ci"])
def test_per_layer_breakdown_pinned(accel, scheme):
    """Layer-level pins localize a drift to the operation that moved."""
    (network,) = GOLDEN["per_layer"]
    result = accel.run(build_model(network), build_scheme(scheme))
    got = [{
        "layer": layer.name,
        "op": layer.op,
        "data_bytes": layer.data_bytes,
        "vn_bytes": layer.breakdown.get(RequestKind.VN, 0),
        "mac_bytes": layer.breakdown.get(RequestKind.MAC, 0),
        "tree_bytes": layer.breakdown.get(RequestKind.TREE, 0),
    } for layer in result.layers]
    assert got == GOLDEN["per_layer"][network][scheme]


def test_golden_schemes_are_consistent():
    """The pinned numbers themselves satisfy the paper's qualitative
    claims — guarding against regenerating golden values from a broken
    tree without noticing."""
    for mode in ("inference", "training"):
        for network, by_scheme in GOLDEN[mode].items():
            np_row = by_scheme["np"]
            assert np_row["metadata_bytes"] == 0
            assert by_scheme["guardnn-c"]["metadata_bytes"] == 0
            ci, bp = by_scheme["guardnn-ci"], by_scheme["bp"]
            # GuardNN_CI: MAC-only metadata, far below BP's VN+MAC+tree
            assert ci["vn_bytes"] == 0 and ci["tree_bytes"] == 0
            assert 0 < ci["metadata_bytes"] < bp["metadata_bytes"], network
            assert bp["vn_bytes"] > 0 and bp["tree_bytes"] > 0
            # and the cycle ordering that shapes Figure 3
            assert (np_row["total_cycles"] <= by_scheme["guardnn-c"]["total_cycles"]
                    <= ci["total_cycles"] <= bp["total_cycles"])
