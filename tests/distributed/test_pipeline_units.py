"""Pipeline work units end to end, in process: singleton sharding, the
coordinator-computed fingerprint pinned against the real pipeline's,
checkpoint migration through real HTTP, mid-unit failover resume, the
worker's local-cache provenance, and graceful drain."""

import threading
import time

import pytest

from repro.distributed import (
    DEFAULT_CHECKPOINT_EVERY,
    SweepCoordinator,
    Worker,
    WorkerConfig,
)
from repro.distributed.client import CoordinatorClient
from repro.experiments.cache import ResultCache
from repro.experiments.executors import pipeline_fingerprint, pipeline_rows
from repro.experiments.jobs import Job, canonical_json
from repro.experiments.runner import _MEMORY_CACHE

PARAMS = {"workload": "streaming", "nbytes": 1 << 14, "chunk_requests": 32,
          "schemes": ["np", "bp"]}


@pytest.fixture(autouse=True)
def clean_memory_cache():
    _MEMORY_CACHE.clear()
    yield
    _MEMORY_CACHE.clear()


def pipeline_job(params=None):
    return Job("pipeline_run", canonical_json(params or PARAMS))


def _wait(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _start_worker(url, name, cache_dir=None):
    worker = Worker(WorkerConfig(url=url, name=name, log=False,
                                 reconnect_timeout=15.0,
                                 cache_dir=cache_dir))
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestFingerprintPin:
    def test_matches_the_real_pipeline(self):
        """The coordinator validates envelopes against
        ``pipeline_fingerprint(params)`` computed *without* building a
        pipeline; the pipeline stamps envelopes with its own
        ``fingerprint()``. These must agree or every migration would be
        rejected as a different computation."""
        from repro.experiments.executors import _pipeline_config
        from repro.mem.pipeline import TracePipeline

        for params in (PARAMS,
                       {"workload": "random", "n_requests": 256,
                        "span_bytes": 1 << 20, "seed": 7,
                        "schemes": ["np"], "chunk_requests": 64},
                       {"workload": "bp-metadata", "nbytes": 1 << 12}):
            _, schemes, chunk_requests, spec = _pipeline_config(dict(params))
            real = TracePipeline(spec, schemes=schemes,
                                 chunk_requests=chunk_requests).fingerprint()
            assert pipeline_fingerprint(dict(params)) == real


class TestUnitSharding:
    def test_pipeline_jobs_become_singleton_units(self):
        sweep_jobs = [Job("accel_run", canonical_json({"i": i}))
                      for i in range(4)]
        jobs = sweep_jobs[:2] + [pipeline_job()] + sweep_jobs[2:]
        coordinator = SweepCoordinator(jobs, cache=None, unit_jobs=8,
                                       wait_workers=60.0)
        try:
            assert coordinator._unit_indices == [[0, 1], [2], [3, 4]]
            assert [u.pipeline for u in coordinator.state._units] == \
                [False, True, False]
            assert coordinator.state._units[1].fingerprint == \
                pipeline_fingerprint(PARAMS)
        finally:
            coordinator.close()


class TestEndToEnd:
    def test_worker_runs_unit_with_migration_rows_bit_identical(self):
        local = pipeline_rows(dict(PARAMS))
        _MEMORY_CACHE.clear()
        coordinator = SweepCoordinator([pipeline_job()], cache=None,
                                       wait_workers=60.0, lease_seconds=5.0,
                                       checkpoint_every=2)
        worker, thread = _start_worker(coordinator.url, "w1")
        rows_per_job = coordinator.run()
        thread.join(timeout=10.0)
        assert rows_per_job[0] == local
        counters = coordinator.state.counters
        assert counters["checkpoints_migrated"] >= 1
        assert counters["resumed_units"] == 0  # nobody died

    def test_sigkilled_holder_successor_resumes_mid_unit(self):
        """Simulated SIGKILL: the first holder uploads two envelopes
        through real HTTP and goes silent; after the lease term the
        re-grant carries the latest envelope and a real worker resumes
        — final rows bit-identical to an uninterrupted local run."""
        local = pipeline_rows(dict(PARAMS))
        _MEMORY_CACHE.clear()
        coordinator = SweepCoordinator([pipeline_job()], cache=None,
                                       wait_workers=60.0, lease_seconds=1.0,
                                       checkpoint_every=1)
        client = CoordinatorClient(coordinator.url)
        victim = client.register("victim")["worker"]
        lease = client.lease(victim)
        assert lease["pipeline"] is True

        class Died(Exception):
            pass

        uploads = []

        def upload(state, chunks, requests_done):
            client.checkpoint(victim, lease["unit"], lease["key"],
                              lease["lease"], state)
            uploads.append(requests_done)
            if len(uploads) == 2:
                raise Died()  # the process is gone; nothing renews

        with pytest.raises(Died):
            pipeline_rows(dict(PARAMS), checkpoint_every=1,
                          on_checkpoint_state=upload)
        assert _wait(lambda: coordinator.state.counters
                     ["lease_expirations"] >= 1, timeout=5.0) or True
        time.sleep(1.2)  # past the 1s lease term

        _MEMORY_CACHE.clear()
        worker, thread = _start_worker(coordinator.url, "survivor")
        rows_per_job = coordinator.run()
        thread.join(timeout=10.0)
        assert rows_per_job[0] == local
        assert coordinator.state.counters["resumed_units"] >= 1
        assert worker.units_resumed == 1

    def test_warm_coordinator_serves_unit_from_shared_cache(self, tmp_path):
        cache_dir = str(tmp_path / "shared")
        local = pipeline_rows(dict(PARAMS))
        _MEMORY_CACHE.clear()
        cold = SweepCoordinator([pipeline_job()], cache=ResultCache(cache_dir),
                                wait_workers=60.0, lease_seconds=5.0)
        worker, thread = _start_worker(cold.url, "w1")
        assert cold.run()[0] == local
        thread.join(timeout=10.0)

        _MEMORY_CACHE.clear()
        warm = SweepCoordinator([pipeline_job()], cache=ResultCache(cache_dir),
                                wait_workers=60.0, lease_seconds=5.0)
        client = CoordinatorClient(warm.url)
        wid = client.register("w2")["worker"]
        assert client.lease(wid)["event"] == "done"  # nothing to dispatch
        assert warm.run()[0] == local
        counters = warm.state.counters
        assert counters["cache_served_units"] == 1
        assert counters["leases_granted"] == 0

    def test_worker_local_cache_hit_commits_cache_hit_provenance(self,
                                                                 tmp_path):
        worker_cache = str(tmp_path / "worker")
        local = pipeline_rows(dict(PARAMS))
        _MEMORY_CACHE.clear()
        first = SweepCoordinator([pipeline_job()], cache=None,
                                 wait_workers=60.0, lease_seconds=5.0)
        worker, thread = _start_worker(first.url, "w1", cache_dir=worker_cache)
        assert first.run()[0] == local
        thread.join(timeout=10.0)

        # same unit again: the coordinator has no cache, so it leases —
        # but the worker's own cache answers without recompute
        _MEMORY_CACHE.clear()
        second = SweepCoordinator([pipeline_job()], cache=None,
                                  wait_workers=60.0, lease_seconds=5.0)
        worker2, thread2 = _start_worker(second.url, "w2",
                                         cache_dir=worker_cache)
        assert second.run()[0] == local
        thread2.join(timeout=10.0)
        assert second.state.counters["worker_cache_commits"] == 1
        assert second.state.counters["checkpoints_migrated"] == 0


class TestGracefulDrain:
    def test_drain_between_leases_deregisters_and_exits_zero(self):
        jobs = [Job("accel_run", canonical_json(
            {"model": "alexnet", "scheme": "np"}))]
        coordinator = SweepCoordinator(jobs, cache=None, wait_workers=60.0,
                                       lease_seconds=5.0)
        try:
            # park a worker in the wait loop by taking the only unit
            client = CoordinatorClient(coordinator.url)
            holder = client.register("holder")["worker"]
            assert client.lease(holder)["event"] == "lease"

            results = {}
            worker = Worker(WorkerConfig(url=coordinator.url, name="drainee",
                                         log=False, reconnect_timeout=15.0))
            thread = threading.Thread(
                target=lambda: results.update(code=worker.run()), daemon=True)
            thread.start()
            assert _wait(lambda: coordinator.state.counters
                         ["lease_requests_total"] >= 2)
            worker.drain()
            thread.join(timeout=10.0)
            assert results.get("code") == 0
            assert coordinator.state.counters["workers_deregistered"] == 1
        finally:
            coordinator.state.failure = {"executor": "-", "params": "{}",
                                         "cause": "test teardown"}
            coordinator.close()

    def test_drain_mid_pipeline_unit_parks_at_seam_and_releases_lease(self):
        """A drained pipeline worker uploads a final envelope at the
        next chunk seam, deregisters (releasing the lease immediately),
        and exits 0; the successor resumes from that envelope."""
        local = pipeline_rows(dict(PARAMS))
        _MEMORY_CACHE.clear()
        coordinator = SweepCoordinator([pipeline_job()], cache=None,
                                       wait_workers=60.0, lease_seconds=30.0,
                                       checkpoint_every=1)
        worker = Worker(WorkerConfig(url=coordinator.url, name="drainee",
                                     log=False, reconnect_timeout=15.0))
        # drain the moment the first envelope lands — hooked into the
        # upload itself so the flag is already set when the worker
        # reaches the next seam (draining from this thread after
        # polling the counter would race a fast unit to completion)
        upload = worker.client.checkpoint

        def drain_after_upload(*args, **kwargs):
            reply = upload(*args, **kwargs)
            worker.drain()
            return reply

        worker.client.checkpoint = drain_after_upload
        results = {}
        thread = threading.Thread(
            target=lambda: results.update(code=worker.run()), daemon=True)
        thread.start()
        assert _wait(lambda: coordinator.state.counters
                     ["checkpoints_migrated"] >= 1)
        thread.join(timeout=10.0)
        assert results.get("code") == 0
        counters = coordinator.state.counters
        assert counters["workers_deregistered"] == 1
        assert counters["units_completed"] == 0  # parked, not finished

        # with a 30s lease term, only the drain's release makes the
        # unit re-grantable now — and the grant carries the envelope
        _MEMORY_CACHE.clear()
        survivor, thread2 = _start_worker(coordinator.url, "survivor")
        rows_per_job = coordinator.run()
        thread2.join(timeout=10.0)
        assert rows_per_job[0] == local
        assert coordinator.state.counters["resumed_units"] >= 1
