"""Wire-protocol invariants: content addressing, order-preserving row
encoding, request validation, and backoff bounds."""

import pytest

from repro.distributed import Backoff, unit_key, rows_digest
from repro.distributed.protocol import (
    ProtocolError,
    jobs_from_wire,
    jobs_to_wire,
    parse_heartbeat,
    parse_lease_request,
    parse_register,
    parse_result,
    rows_from_wire,
    rows_to_wire,
)
from repro.experiments.jobs import Job

JOBS = [Job("simulate", '{"model": "alexnet", "scheme": "np"}'),
        Job("simulate", '{"model": "alexnet", "scheme": "bp"}')]


class TestContentAddressing:
    def test_unit_key_deterministic(self):
        assert unit_key(JOBS, "fp") == unit_key(list(JOBS), "fp")

    def test_unit_key_sensitive_to_jobs_order_and_fingerprint(self):
        base = unit_key(JOBS, "fp")
        assert unit_key(JOBS[::-1], "fp") != base
        assert unit_key(JOBS, "other-fp") != base
        assert unit_key(JOBS[:1], "fp") != base

    def test_rows_digest_equal_for_equal_rows(self):
        rows = [[{"a": 1, "b": 2.5}], [{"a": 3}]]
        same = [[{"b": 2.5, "a": 1}], [{"a": 3}]]
        assert rows_digest(rows) == rows_digest(same)
        assert rows_digest(rows) != rows_digest([[{"a": 1, "b": 2.5}], []])


class TestWireRoundtrips:
    def test_jobs_roundtrip(self):
        assert jobs_from_wire(jobs_to_wire(JOBS)) == JOBS

    def test_jobs_from_wire_rejects_garbage(self):
        for bad in ([], [["one"]], [[1, 2]], "nope", [["a", "b", "c"]]):
            with pytest.raises(ProtocolError):
                jobs_from_wire(bad)

    def test_rows_roundtrip_preserves_key_order(self):
        """The bit-identical contract hinges on this: canonical JSON
        sorts object keys, so rows must cross the wire as schema
        tables, not dicts."""
        rows = [[{"z": 1, "a": 2}, {"z": 3, "a": 4}],
                [{"m": 0.5, "b": True, "s": "x"}]]
        decoded = rows_from_wire(rows_to_wire(rows))
        assert decoded == rows
        assert [list(r) for unit in decoded for r in unit] == \
               [list(r) for unit in rows for r in unit]

    def test_rows_roundtrip_mixed_schemas_and_empty(self):
        rows = [[{"a": 1}, {"b": 2, "c": 3}, {"a": 9}], []]
        assert rows_from_wire(rows_to_wire(rows)) == rows
        assert rows_from_wire(rows_to_wire([])) == []

    def test_rows_from_wire_rejects_malformed(self):
        good = rows_to_wire([[{"a": 1}]])
        for bad in ("x", [["only-one"]], [[[["a"]], [[5, [1]]]]],
                    [[[["a"]], [[0, [1, 2]]]]]):
            with pytest.raises(ProtocolError):
                rows_from_wire(bad)
        assert rows_from_wire(good) == [[{"a": 1}]]


class TestRequestValidation:
    def test_register_defaults_and_bounds(self):
        assert parse_register({}) == {"name": "", "workers": 1}
        assert parse_register({"name": "w", "workers": 4})["workers"] == 4
        with pytest.raises(ProtocolError):
            parse_register({"workers": 0})
        with pytest.raises(ProtocolError):
            parse_register({"name": 7})

    def test_lease_and_heartbeat_need_worker_id(self):
        assert parse_lease_request({"worker": "w-1"}) == "w-1"
        with pytest.raises(ProtocolError):
            parse_lease_request({"worker": ""})
        worker, leases, failures = parse_heartbeat(
            {"worker": "w", "leases": ["l1"]})
        assert (worker, leases, failures) == ("w", ["l1"], 0)
        _, _, failures = parse_heartbeat(
            {"worker": "w", "leases": [], "failures": 2})
        assert failures == 2
        with pytest.raises(ProtocolError):
            parse_heartbeat({"worker": "w", "leases": [1]})
        with pytest.raises(ProtocolError):
            parse_heartbeat({"worker": "w", "leases": [], "failures": -1})

    def test_result_requires_rows_or_error(self):
        parsed = parse_result({"worker": "w", "unit": 0, "key": "k",
                               "lease": "l",
                               "rows": rows_to_wire([[{"a": 1}]])})
        assert parsed["rows"] == [[{"a": 1}]]
        parsed = parse_result({"worker": "w", "unit": 1, "key": "k",
                               "lease": None,
                               "error": {"executor": "e", "params": "{}",
                                         "cause": "boom"}})
        assert parsed["error"]["cause"] == "boom"
        with pytest.raises(ProtocolError):
            parse_result({"worker": "w", "unit": -1, "key": "k", "rows": []})
        with pytest.raises(ProtocolError):
            parse_result({"worker": "w", "unit": 0, "key": "k",
                          "error": {"executor": "e"}})


class TestBackoff:
    def test_delays_bounded_and_growing_spread(self):
        import random

        backoff = Backoff(base=0.1, cap=5.0, rng=random.Random(7))
        delays = [backoff.next_delay() for _ in range(50)]
        assert all(0.1 <= d <= 5.0 for d in delays)
        # decorrelated jitter reaches the cap region eventually
        assert max(delays) > 1.0

    def test_reset_returns_to_base_window(self):
        import random

        backoff = Backoff(base=0.1, cap=5.0, rng=random.Random(7))
        for _ in range(20):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() <= 0.3  # uniform(base, 3*base)

    def test_wait_uses_injected_sleep(self):
        slept = []
        backoff = Backoff(base=0.05, cap=1.0, sleep=slept.append)
        delay = backoff.wait()
        assert slept == [delay]
