"""Write-ahead journal semantics: durable header, append/replay
round-trip, torn-tail truncation, mid-file corruption refusal,
identity pinning, epoch-bumping compaction — plus the coordinator's
recovery (journaled units done, envelopes re-granted, no cache-write
amplification) and the structured 409 a stale worker receives over
HTTP after a restart."""

import json
import os

import pytest

from repro.distributed import (
    CoordinatorClient,
    CoordinatorServer,
    CoordinatorState,
    Journal,
    JournalError,
    WorkerRejected,
    journal_meta,
    replay,
)
from repro.distributed import protocol
from repro.experiments.jobs import Job


def make_jobs(n, tag=0):
    return [Job("simulate", f'{{"i": {i}, "tag": {tag}}}') for i in range(n)]


def make_rows(jobs, tag="r"):
    return [[{"job": job.params_json, "tag": tag}] for job in jobs]


def make_state(path=None, n_units=2, unit_jobs=2, meta=None, **kwargs):
    units = [make_jobs(unit_jobs, tag=u) for u in range(n_units)]
    return CoordinatorState(units, fingerprint="fp", lease_seconds=10.0,
                            journal_path=path, journal_meta=meta,
                            **kwargs), units


def admit(state, *workers):
    for worker in workers:
        state._workers[worker] = state.clock()


def keys_of(state):
    return [u.key for u in state._units]


class TestJournalFile:
    def test_fresh_journal_writes_durable_header(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        journal, state = Journal.recover(path, "fp", ["k1", "k2"],
                                         meta={"who": "test"})
        assert state is None
        assert journal.epoch == 0
        journal.close()
        # the header is already durable: a crash right here recovers it
        replayed = replay(path)
        assert replayed.fingerprint == "fp"
        assert replayed.unit_keys == ["k1", "k2"]
        assert replayed.epoch == 0
        assert journal_meta(path) == {"who": "test"}

    def test_append_replay_round_trip_and_epoch_bump(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        rows = [[{"a": 1}], [{"a": 2}]]
        wire = protocol.rows_to_wire(rows)
        digest = protocol.rows_digest(rows)
        with Journal.recover(path, "fp", ["k1", "k2"])[0] as journal:
            journal.append_commit(0, wire, digest, "w-1")
            journal.append_checkpoint(1, 64, {"cursor": 64, "x": "a"})
            journal.append_checkpoint(1, 128, {"cursor": 128, "x": "b"})
        journal, state = Journal.recover(path, "fp", ["k1", "k2"])
        journal.close()
        assert state.epoch == 1          # one recovery = one bump
        assert journal.epoch == 1
        assert state.commits[0]["digest"] == digest
        assert protocol.rows_from_wire(state.commits[0]["rows"]) == rows
        # latest-cursor-wins for envelopes
        assert state.checkpoints[1]["x"] == "b"
        assert journal.counters["journal_replayed_units"] == 1

    def test_compaction_drops_history_keeps_state(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        rows = [[{"a": 1}]]
        wire, digest = protocol.rows_to_wire(rows), protocol.rows_digest(rows)
        with Journal.recover(path, "fp", ["k1"])[0] as journal:
            for cursor in (64, 128, 192):
                journal.append_checkpoint(0, cursor, {"cursor": cursor})
            journal.append_commit(0, wire, digest, "w-1")
        journal, _ = Journal.recover(path, "fp", ["k1"])
        journal.close()
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        # snapshot form: header + the commit; a committed unit's
        # envelopes are dead weight and every superseded cursor is gone
        assert [r["type"] for r in records] == ["header", "commit"]
        assert records[0]["epoch"] == 1

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with Journal.recover(path, "fp", ["k1"])[0] as journal:
            pass
        size_before = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"type": "commit", "unit": 0, "dig')  # torn
        journal, state = Journal.recover(path, "fp", ["k1"])
        journal.close()
        assert journal.counters["journal_truncated"] == 1
        assert state.commits == {}
        # the torn bytes are physically gone, not just skipped
        assert os.path.getsize(path) >= size_before  # compacted snapshot
        assert replay(path).truncated == 0

    def test_unparseable_final_full_line_is_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with Journal.recover(path, "fp", ["k1"])[0] as journal:
            pass
        with open(path, "ab") as handle:
            handle.write(b'{"type": "commit", garbage}\n')  # has newline
        journal, state = Journal.recover(path, "fp", ["k1"])
        journal.close()
        assert journal.counters["journal_truncated"] == 1

    def test_empty_and_header_torn_files_recover_fresh(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        open(path, "wb").close()
        assert replay(path) is None
        with open(path, "wb") as handle:
            handle.write(b'{"type": "header", "jour')  # torn header
        journal, state = Journal.recover(path, "fp", ["k1"])
        journal.close()
        assert state is None       # nothing durable ever existed
        assert journal.epoch == 0

    def test_midfile_corruption_refused(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        rows = [[{"a": 1}]]
        with Journal.recover(path, "fp", ["k1"])[0] as journal:
            journal.append_commit(0, protocol.rows_to_wire(rows),
                                  protocol.rows_digest(rows), "w-1")
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:  # flip bytes in the *header*
            handle.write(b"garbage-not-json\n" + raw.split(b"\n", 1)[1])
        with pytest.raises(JournalError):
            replay(path)

    def test_digest_mismatch_is_midfile_corruption(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        rows = [[{"a": 1}]]
        with Journal.recover(path, "fp", ["k1"])[0] as journal:
            journal.append_commit(0, protocol.rows_to_wire(rows),
                                  protocol.rows_digest([[{"a": 2}]]), "w-1")
            # a trailing record keeps the bad commit off the final line
            journal.append_checkpoint(0, 64, {"cursor": 64})
        with pytest.raises(JournalError, match="rows_digest"):
            replay(path)

    def test_identity_mismatch_refused_with_remedy(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        Journal.recover(path, "fp", ["k1"])[0].close()
        with pytest.raises(JournalError, match="delete the journal"):
            Journal.recover(path, "other-fp", ["k1"])
        with pytest.raises(JournalError, match="delete the journal"):
            Journal.recover(path, "fp", ["k1", "k2"])

    def test_second_header_refused(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with Journal.recover(path, "fp", ["k1"])[0] as journal:
            journal._write_header("fp", ["k1"], 0, {})
        with pytest.raises(JournalError, match="second header"):
            replay(path)


class TestCoordinatorRecovery:
    def test_journaled_commit_survives_restart_bit_identical(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        state, units = make_state(path, n_units=2)
        admit(state, "w1")
        lease = state.lease("w1")
        rows = make_rows(units[lease["unit"]])
        state.commit("w1", lease["unit"], lease["key"], lease["lease"], rows)
        state.close()   # release the handle; the process "dies" here

        revived, _ = make_state(path, n_units=2)
        assert revived.epoch == 1
        assert revived._units[lease["unit"]].done
        assert revived._units[lease["unit"]].rows == rows
        assert revived._units[lease["unit"]].digest == \
            protocol.rows_digest(rows)
        # replay is not completion: the metric counts live commits only
        assert revived.counters["units_completed"] == 0
        assert revived.counters["journal_replayed_units"] == 1
        revived.close()

    def test_restart_voids_leases_and_reoffers_remainder(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        state, units = make_state(path, n_units=2)
        admit(state, "w1", "w2")
        done = state.lease("w1")
        state.commit("w1", done["unit"], done["key"], done["lease"],
                     make_rows(units[done["unit"]]))
        state.lease("w2")   # in flight at crash time; never committed
        state.close()

        revived, _ = make_state(path, n_units=2)
        admit(revived, "w3")
        regrant = revived.lease("w3")   # no expiry wait: leases are soft
        assert regrant["event"] == "lease"
        assert regrant["unit"] != done["unit"]
        revived.close()

    def test_replay_skips_on_commit_no_cache_amplification(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        committed = []
        state, units = make_state(
            path, n_units=1,
            on_commit=lambda *args: committed.append(args))
        admit(state, "w1")
        lease = state.lease("w1")
        state.commit("w1", lease["unit"], lease["key"], lease["lease"],
                     make_rows(units[0]))
        assert len(committed) == 1
        state.close()

        replays = []
        revived, _ = make_state(
            path, n_units=1,
            on_commit=lambda *args: replays.append(args))
        assert revived._units[0].done
        assert replays == []    # rows came *from* the journal; no rewrite
        revived.close()

    def test_latest_envelope_rides_the_regrant(self, tmp_path):
        from tests.distributed.test_coordinator import (
            FINGERPRINT,
            make_envelope,
        )

        path = str(tmp_path / "wal.jsonl")
        units = [[Job("pipeline_run", '{"workload": "streaming"}')]]

        def build():
            return CoordinatorState(
                units, fingerprint="fp", lease_seconds=10.0,
                unit_fingerprints=[FINGERPRINT], checkpoint_every=2,
                journal_path=path)

        state = build()
        admit(state, "w1")
        lease = state.lease("w1")
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=64))
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=128))
        state.close()

        revived = build()
        admit(revived, "w2")
        regrant = revived.lease("w2")
        assert regrant["event"] == "lease"
        assert regrant["checkpoint"]["cursor"] == 128   # mid-unit resume
        assert revived.counters["resumed_units"] == 1
        revived.close()

    def test_double_restart_double_bump(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        for expected_epoch in (0, 1, 2):
            state, _ = make_state(path, n_units=1)
            assert state.epoch == expected_epoch
            state.close()


class TestStaleWorkerOverHttp:
    """Satellite contract: a worker id from a previous incarnation gets
    HTTP 409 with ``{"event": "error", "error": "unknown_worker",
    "epoch": N}`` on every fenced verb, and the client surfaces it as
    :class:`WorkerRejected` (not a retryable transport error)."""

    @pytest.fixture
    def server(self):
        state, units = make_state(n_units=1)
        server = CoordinatorServer(state, host="127.0.0.1", port=0)
        yield server, state, units
        server.close()

    def _raw_post(self, server, path, payload):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            body = json.dumps(payload).encode()
            conn.request("POST", path, body=body,
                         headers={"Content-Length": str(len(body))})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    @pytest.mark.parametrize("path,payload", [
        ("/v1/lease", {"event": "lease", "worker": "stale-1"}),
        ("/v1/heartbeat", {"event": "heartbeat", "worker": "stale-1",
                           "leases": []}),
        ("/v1/result", {"event": "result", "worker": "stale-1", "unit": 0,
                        "key": "k", "lease": "l",
                        "rows": [[[["a"]], [[0, [1]]]]]}),
        ("/v1/checkpoint", {"event": "checkpoint", "worker": "stale-1",
                            "unit": 0, "key": "k", "lease": "l",
                            "state": {"cursor": 0}}),
    ], ids=["lease", "heartbeat", "commit", "checkpoint"])
    def test_reply_shape_is_exactly_the_contract(self, server, path, payload):
        server, state, _ = server
        status, event = self._raw_post(server, path, payload)
        assert status == 409
        assert event == {"event": "error", "error": "unknown_worker",
                         "worker": "stale-1", "epoch": 0}
        assert state.counters["stale_worker_rejects"] >= 1

    def test_client_raises_worker_rejected_with_epoch(self, server):
        server, state, _ = server
        client = CoordinatorClient(server.url)
        with pytest.raises(WorkerRejected) as excinfo:
            client.lease("stale-9")
        assert excinfo.value.epoch == 0
        # a *registered* id sails through the same client
        worker = client.register("ok")["worker"]
        assert client.lease(worker)["event"] == "lease"

    def test_registered_reply_advertises_epoch(self, server):
        server, state, _ = server
        client = CoordinatorClient(server.url)
        assert client.register("w")["epoch"] == state.epoch
