"""CoordinatorState machine semantics in virtual time: lease grant,
expiry and re-dispatch, heartbeat renewal, idempotent commit, straggler
duplicate-dispatch, checkpoint migration, graceful deregistration,
cache-served units, epoch fencing, and failure fast-path — no sockets,
no sleeping."""

import pytest

from repro.checkpoint import CHECKPOINT_VERSION
from repro.distributed import CoordinatorState, LOCAL_WORKER, StaleWorkerError
from repro.distributed.protocol import ProtocolError, rows_digest
from repro.experiments.jobs import Job


def make_jobs(n):
    return [Job("simulate", f'{{"i": {i}}}') for i in range(n)]


def make_rows(jobs, tag="r"):
    return [[{"job": job.params_json, "tag": tag}] for job in jobs]


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_state(n_units=2, unit_jobs=2, **kwargs):
    clock = Clock()
    units = [make_jobs(unit_jobs) for _ in range(n_units)]
    state = CoordinatorState(units, fingerprint="fp", lease_seconds=10.0,
                             clock=clock, **kwargs)
    return state, units, clock


def admit(state, *workers):
    """Seed fixed worker ids as if they had registered. Most tests here
    predate epoch fencing and speak readable ids like ``"w1"``;
    ``register()`` mints unique ids, so admit the fixed ones directly."""
    now = state.clock()
    for worker in workers:
        state._workers[worker] = now


class TestLeaseLifecycle:
    def test_grant_then_wait_then_done(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        assert lease["event"] == "lease"
        assert lease["lease_seconds"] == 10.0
        # everything leased: a second worker waits
        assert state.lease("w2")["event"] == "wait"
        state.commit("w1", lease["unit"], lease["key"], lease["lease"],
                     make_rows(units[0]))
        assert state.lease("w1")["event"] == "done"
        assert state.done

    def test_expired_lease_redispatches_unit(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1", "w2")
        first = state.lease("w1")
        clock.advance(10.1)  # past the lease term, no heartbeat
        second = state.lease("w2")
        assert second["event"] == "lease"
        assert second["unit"] == first["unit"]
        assert second["lease"] != first["lease"]
        assert state.counters["lease_expirations"] == 1
        snap = state.snapshot()
        assert snap["redispatches"] == 1

    def test_heartbeat_extends_lease(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        for _ in range(5):
            clock.advance(6.0)  # under the 10s term each step
            reply = state.heartbeat("w1", [lease["lease"]])
            assert reply["renewed"] == [lease["lease"]]
            assert reply["lost"] == []
        # 30s elapsed, lease still live: nothing to re-dispatch
        assert state.lease("w2")["event"] == "wait"
        assert state.counters["lease_renewals"] == 5

    def test_heartbeat_reports_lost_lease(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1")
        lease = state.lease("w1")
        clock.advance(11.0)
        reply = state.heartbeat("w1", [lease["lease"]])
        assert reply["renewed"] == []
        assert reply["lost"] == [lease["lease"]]


class TestEpochFence:
    """Only ids minted by this coordinator incarnation may lease, renew,
    commit, or upload — a stale id is rejected with the current epoch so
    the worker knows to re-register, not retry."""

    def test_unknown_worker_rejected_with_epoch(self):
        state, _, _ = make_state()
        with pytest.raises(StaleWorkerError) as excinfo:
            state.lease("never-registered")
        assert excinfo.value.worker == "never-registered"
        assert excinfo.value.epoch == 0
        assert state.counters["stale_worker_rejects"] == 1
        assert state.counters["workers_registered"] == 0

    def test_all_fenced_verbs_reject_unknown_ids(self):
        state, units, clock = make_pipeline_state()
        with pytest.raises(StaleWorkerError):
            state.heartbeat("ghost", [])
        with pytest.raises(StaleWorkerError):
            state.commit("ghost", 0, "key", "lease", [[{"r": 1}]])
        with pytest.raises(StaleWorkerError):
            state.checkpoint("ghost", 0, "key", "lease", make_envelope())
        assert state.counters["stale_worker_rejects"] == 3

    def test_fail_and_deregister_stay_lenient(self):
        """A failure report or a drain from a stale id is information,
        not a request for work — rejecting it would only hide signal."""
        state, units, clock = make_state(n_units=1)
        assert state.deregister("ghost")["released"] == 0
        state.fail("ghost", 0, state._units[0].key,
                   {"executor": "e", "params": "{}", "cause": "boom"})
        assert state.done

    def test_local_worker_exempt_from_fence(self):
        state, units, clock = make_state(n_units=1)
        lease = state.lease(LOCAL_WORKER)
        assert lease["event"] == "lease"

    def test_register_mints_usable_id(self):
        state, _, _ = make_state()
        reply = state.register("crunch")
        assert reply["event"] == "registered"
        assert reply["worker"].startswith("crunch-")
        assert state.counters["workers_registered"] == 1
        assert state.lease(reply["worker"])["event"] == "lease"

    def test_every_reply_carries_the_epoch(self):
        state, units, clock = make_state(n_units=1)
        registered = state.register("w")
        worker = registered["worker"]
        assert registered["epoch"] == 0
        lease = state.lease(worker)
        assert lease["epoch"] == 0
        assert state.heartbeat(worker, [lease["lease"]])["epoch"] == 0
        commit = state.commit(worker, lease["unit"], lease["key"],
                              lease["lease"], make_rows(units[0]))
        assert commit["epoch"] == 0
        assert state.lease(worker)["epoch"] == 0  # the "done" reply too


class TestIdempotentCommit:
    def test_duplicate_equal_result_dropped_with_metric(self):
        """The lease-expired-then-returned worker: both copies answer;
        the second is verified byte-equal and dropped."""
        state, units, clock = make_state(n_units=1)
        admit(state, "w1", "w2")
        first = state.lease("w1")
        clock.advance(10.5)
        second = state.lease("w2")  # re-dispatch after expiry
        rows = make_rows(units[0])
        reply = state.commit("w2", second["unit"], second["key"],
                             second["lease"], rows)
        assert reply["event"] == "committed"
        # w1 returns from the dead with the same (pure-function) rows
        late = state.commit("w1", first["unit"], first["key"],
                            first["lease"], make_rows(units[0]))
        assert late["event"] == "duplicate"
        assert state.counters["duplicate_results_dropped"] == 1
        assert state.counters["units_completed"] == 1

    def test_duplicate_mismatch_counted_first_result_kept(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        good = make_rows(units[0], tag="good")
        state.commit("w1", lease["unit"], lease["key"], lease["lease"], good)
        bad = make_rows(units[0], tag="evil")
        reply = state.commit("w2", lease["unit"], lease["key"], None, bad)
        assert reply["event"] == "duplicate"
        assert state.counters["duplicate_result_mismatches"] == 1
        assert state.results()[0] == good

    def test_commit_after_expiry_still_lands(self):
        """A valid result with a dead lease is committed, not wasted —
        recomputing bits we already hold helps no one."""
        state, units, clock = make_state(n_units=1)
        admit(state, "w1")
        lease = state.lease("w1")
        clock.advance(60.0)
        reply = state.commit("w1", lease["unit"], lease["key"],
                             lease["lease"], make_rows(units[0]))
        assert reply["event"] == "committed"
        assert state.counters["expired_lease_commits"] == 1

    def test_wrong_key_rejected(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1")
        lease = state.lease("w1")
        with pytest.raises(ProtocolError):
            state.commit("w1", lease["unit"], "stale-key", lease["lease"],
                         make_rows(units[0]))
        assert state.counters["invalid_results"] == 1
        assert not state.done

    def test_wrong_row_count_rejected(self):
        state, units, clock = make_state(n_units=1, unit_jobs=2)
        admit(state, "w1")
        lease = state.lease("w1")
        with pytest.raises(ProtocolError):
            state.commit("w1", lease["unit"], lease["key"], lease["lease"],
                         make_rows(units[0][:1]))
        assert state.counters["invalid_results"] == 1

    def test_commit_digest_matches_rows_digest(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1")
        lease = state.lease("w1")
        rows = make_rows(units[0])
        state.commit("w1", lease["unit"], lease["key"], lease["lease"], rows)
        assert state._units[0].digest == rows_digest(rows)


class TestStragglerDuplicates:
    def test_slow_unit_gets_second_lease(self):
        state, units, clock = make_state(n_units=2, straggler_factor=3.0)
        admit(state, "slow", "fast", "other")
        slow = state.lease("slow")
        fast = state.lease("fast")
        # fast commits quickly -> EWMA ~1s
        clock.advance(1.0)
        state.commit("fast", fast["unit"], fast["key"], fast["lease"],
                     make_rows(units[fast["unit"]]))
        # slow's unit is now 4x the EWMA old; keep its lease alive
        clock.advance(3.0)
        state.heartbeat("slow", [slow["lease"]])
        dup = state.lease("fast")
        assert dup["event"] == "lease"
        assert dup["unit"] == slow["unit"]
        assert state.counters["straggler_duplicates"] == 1
        # never a third copy, and never to the current holder
        assert state.lease("fast")["event"] == "wait"
        assert state.lease("other")["event"] == "wait"

    def test_no_duplicate_without_factor_or_ewma(self):
        state, units, clock = make_state(n_units=1, straggler_factor=None)
        admit(state, "w1", "w2")
        state.lease("w1")
        clock.advance(5.0)
        assert state.lease("w2")["event"] == "wait"


FINGERPRINT = {"spec": {"type": "streaming", "nbytes": 4096},
               "schemes": ["np", "bp"], "scheme_params": {"np": {}, "bp": {}},
               "chunk_requests": 64}


def make_pipeline_state(**kwargs):
    clock = Clock()
    units = [[Job("pipeline_run", '{"workload": "streaming"}')]]
    state = CoordinatorState(units, fingerprint="fp", lease_seconds=10.0,
                             clock=clock, unit_fingerprints=[FINGERPRINT],
                             checkpoint_every=2, **kwargs)
    return state, units, clock


def make_envelope(cursor=128, fingerprint=None, **overrides):
    chunks = cursor // 64 if isinstance(cursor, int) else 0
    envelope = {"version": CHECKPOINT_VERSION, "kind": "trace-pipeline",
                "fingerprint": FINGERPRINT if fingerprint is None else fingerprint,
                "meta": {}, "cursor": cursor, "chunks": chunks,
                "schemes": {}}
    envelope.update(overrides)
    return envelope


class TestCheckpointMigration:
    def test_pipeline_lease_advertises_checkpointing(self):
        state, units, clock = make_pipeline_state()
        admit(state, "w1")
        lease = state.lease("w1")
        assert lease["pipeline"] is True
        assert lease["checkpoint_every"] == 2
        assert "checkpoint" not in lease  # nothing migrated yet

    def test_regrant_carries_latest_envelope_and_counts_resume(self):
        state, units, clock = make_pipeline_state()
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=64))
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=128))
        clock.advance(11.0)  # w1 dies; lease expires
        regrant = state.lease("w2")
        assert regrant["event"] == "lease"
        assert regrant["checkpoint"]["cursor"] == 128
        assert state.counters["checkpoints_migrated"] == 2
        assert state.counters["resumed_units"] == 1

    def test_upload_renews_the_lease(self):
        state, units, clock = make_pipeline_state()
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        clock.advance(8.0)  # near expiry, no heartbeat
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=64))
        clock.advance(8.0)  # 16s since grant, 8s since upload: still live
        assert state.lease("w2")["event"] == "wait"
        assert state.counters["lease_expirations"] == 0

    def test_stale_cursor_never_overwrites_fresher_envelope(self):
        state, units, clock = make_pipeline_state()
        admit(state, "w1")
        lease = state.lease("w1")
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=128))
        reply = state.checkpoint("w1", lease["unit"], lease["key"],
                                 lease["lease"], make_envelope(cursor=64))
        assert reply["event"] == "stale"
        assert state._units[0].checkpoint["cursor"] == 128
        assert state.counters["checkpoints_migrated"] == 1

    @pytest.mark.parametrize("envelope", [
        make_envelope(version="\x00garbage\x00"),   # corrupt version
        make_envelope(kind="sweep"),                # wrong kind
        make_envelope(fingerprint={"spec": "other"}),  # different computation
        make_envelope(cursor="not-an-int"),         # unusable cursor
        make_envelope(cursor=-3),
    ], ids=["version", "kind", "fingerprint", "cursor-type", "cursor-neg"])
    def test_invalid_envelope_rejected_and_stores_nothing(self, envelope):
        state, units, clock = make_pipeline_state()
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        with pytest.raises(ProtocolError):
            state.checkpoint("w1", lease["unit"], lease["key"],
                             lease["lease"], envelope)
        assert state.counters["checkpoint_rejects"] == 1
        assert state._units[0].checkpoint is None
        # the successor gets a plain grant: falls back to unit start
        clock.advance(11.0)
        assert "checkpoint" not in state.lease("w2")

    def test_checkpoint_for_non_pipeline_unit_rejected(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1")
        lease = state.lease("w1")
        with pytest.raises(ProtocolError):
            state.checkpoint("w1", lease["unit"], lease["key"],
                             lease["lease"], make_envelope())

    def test_checkpoint_after_commit_is_stale(self):
        state, units, clock = make_pipeline_state()
        admit(state, "w1")
        lease = state.lease("w1")
        rows = [[{"scheme": "np"}]]
        state.commit("w1", lease["unit"], lease["key"], lease["lease"], rows)
        reply = state.checkpoint("w1", lease["unit"], lease["key"],
                                 lease["lease"], make_envelope())
        assert reply["event"] == "stale"

    def test_commit_clears_migrated_envelope(self):
        state, units, clock = make_pipeline_state()
        admit(state, "w1")
        lease = state.lease("w1")
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope())
        state.commit("w1", lease["unit"], lease["key"], lease["lease"],
                     [[{"scheme": "np"}]])
        assert state._units[0].checkpoint is None

    def test_envelope_persisted_crash_atomically(self, tmp_path):
        state, units, clock = make_pipeline_state(
            checkpoint_dir=str(tmp_path))
        admit(state, "w1")
        lease = state.lease("w1")
        state.checkpoint("w1", lease["unit"], lease["key"], lease["lease"],
                         make_envelope(cursor=64))
        from repro.checkpoint import load_checkpoint

        stored = load_checkpoint(str(tmp_path / "unit-00000.json"),
                                 kind="trace-pipeline")
        assert stored["cursor"] == 64


class TestDeregister:
    def test_deregister_releases_leases_for_immediate_redispatch(self):
        state, units, clock = make_state(n_units=1)
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        reply = state.deregister("w1")
        assert reply["released"] == 1
        # no clock advance needed: the unit is grantable right now
        regrant = state.lease("w2")
        assert regrant["event"] == "lease"
        assert regrant["unit"] == lease["unit"]
        assert state.counters["leases_released"] == 1
        assert state.counters["workers_deregistered"] == 1

    def test_deregister_drops_live_count_immediately(self):
        state, units, clock = make_state()
        admit(state, "w1")
        state.lease("w1")
        assert state.live_remote_workers() == 1
        state.deregister("w1")
        assert state.live_remote_workers() == 0


class TestCacheServedUnits:
    def test_whole_unit_hit_served_without_dispatch(self):
        hits = {0: [[{"cached": True}], [{"cached": True}]]}
        state, units, clock = make_state(
            n_units=2, unit_jobs=2, cache_lookup=hits.get)
        admit(state, "w1")
        lease = state.lease("w1")
        # unit 0 was answered from the cache; only unit 1 is leased
        assert lease["event"] == "lease"
        assert lease["unit"] == 1
        assert state.counters["cache_served_units"] == 1
        state.commit("w1", lease["unit"], lease["key"], lease["lease"],
                     make_rows(units[1]))
        assert state.done
        assert state.results()[0] == hits[0]

    def test_probe_happens_once_per_unit(self):
        calls = []

        def lookup(index):
            calls.append(index)
            return None

        state, units, clock = make_state(n_units=2, cache_lookup=lookup)
        admit(state, "w1", "w2")
        state.lease("w1")
        state.lease("w2")
        assert sorted(calls) == [0, 1]  # not re-probed on the second lease

    def test_commit_skipped_for_cache_served_units(self):
        committed = []
        state, units, clock = make_state(
            n_units=1, unit_jobs=2,
            cache_lookup=lambda i: [[{"c": 1}], [{"c": 2}]],
            on_commit=lambda *args: committed.append(args))
        admit(state, "w1")
        assert state.lease("w1")["event"] == "done"
        assert committed == []  # rows came *from* the cache; no rewrite


class TestFailureAndObservation:
    def test_deterministic_failure_fails_fast(self):
        state, units, clock = make_state(n_units=2)
        admit(state, "w1", "w2")
        lease = state.lease("w1")
        state.fail("w1", lease["unit"], lease["key"],
                   {"executor": "e", "params": "{}", "cause": "boom"})
        assert state.done
        assert state.failure["cause"] == "boom"
        # everyone is told to disperse
        assert state.lease("w2")["event"] == "done"
        assert state.counters["unit_failures"] == 1

    def test_live_workers_excludes_local_and_stale(self):
        state, units, clock = make_state()
        admit(state, "remote")
        state.lease("remote")
        state.lease(LOCAL_WORKER)
        assert state.live_remote_workers() == 1
        clock.advance(100.0)  # > 2 lease terms
        assert state.live_remote_workers() == 0

    def test_snapshot_shape(self):
        state, units, clock = make_state(n_units=2)
        admit(state, "w1")
        lease = state.lease("w1")
        state.commit("w1", lease["unit"], lease["key"], lease["lease"],
                     make_rows(units[lease["unit"]]))
        snap = state.snapshot()
        assert snap["units_total"] == 2
        assert snap["units_remaining"] == 1
        assert snap["live_workers"] == 1
        assert snap["epoch"] == 0
        assert snap["unit_seconds"]["count"] == 1
        assert snap["counters"]["units_completed"] == 1

    def test_snapshot_per_worker_health(self):
        """Operators can tell a partitioned worker (stale heartbeat,
        leases still held) from an idle one (fresh heartbeat, none)."""
        state, units, clock = make_state(n_units=2)
        admit(state, "holding", "idle")
        holding = state.lease("holding")
        assert holding["event"] == "lease"
        clock.advance(8.0)  # silent since its grant, lease still live
        state.lease(LOCAL_WORKER)
        state.heartbeat("idle", [])
        workers = {w["worker"]: w for w in state.snapshot()["workers"]}
        assert workers["holding"]["held_leases"] == 1
        assert workers["holding"]["last_seen_age_seconds"] == pytest.approx(8.0)
        assert workers["idle"]["held_leases"] == 0
        assert workers["idle"]["last_seen_age_seconds"] == pytest.approx(0.0)
        assert LOCAL_WORKER in workers  # the fallback is visible too

    def test_snapshot_surfaces_heartbeat_failures(self):
        """A worker self-reports its heartbeat-thread error count; the
        coordinator pins it to the worker row so a flaky link is visible
        from this side too."""
        state, units, clock = make_state()
        admit(state, "flaky", "healthy")
        state.heartbeat("flaky", [], failures=3)
        state.heartbeat("healthy", [])
        workers = {w["worker"]: w for w in state.snapshot()["workers"]}
        assert workers["flaky"]["heartbeat_failures"] == 3
        assert workers["healthy"]["heartbeat_failures"] == 0

    def test_results_raise_until_complete(self):
        state, units, clock = make_state(n_units=1)
        with pytest.raises(RuntimeError):
            state.results()
