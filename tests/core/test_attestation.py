"""Attestation hash chains and reports (module-level)."""

import pytest

from repro.core.attestation import (
    AttestationReport,
    AttestationState,
    expected_digests,
    sign_report,
    verify_report,
)
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.crypto.rng import HmacDrbg
from repro.crypto.sha256 import sha256


@pytest.fixture
def device_key():
    return EcdsaKeyPair.generate(HmacDrbg(b"attest-dev"))


def _state():
    state = AttestationState(session_binding=sha256(b"session"))
    state.record_weights(b"W1")
    state.record_weights(b"W2")
    state.record_input(b"X")
    state.record_instruction(b"\x05instr")
    state.record_output(b"Y")
    return state


class TestState:
    def test_digests_match_expected(self):
        state = _state()
        h_in, h_out, h_w, h_i = state.digests()
        e_in, e_out, e_w, e_i = expected_digests([b"W1", b"W2"], [b"X"], [b"Y"],
                                                 [b"\x05instr"])
        assert (h_in, h_out, h_w, h_i) == (e_in, e_out, e_w, e_i)

    def test_digests_sampling_does_not_finalize(self):
        state = _state()
        first = state.digests()
        state.record_instruction(b"more")
        second = state.digests()
        assert first[0] == second[0]  # input unchanged
        assert first[3] != second[3]  # instruction chain advanced

    def test_order_matters(self):
        a = AttestationState(sha256(b"s"))
        a.record_weights(b"AB")
        b = AttestationState(sha256(b"s"))
        b.record_weights(b"A")
        b.record_weights(b"B")
        # streaming hash: same concatenation, same digest
        assert a.digests()[2] == b.digests()[2]


class TestReport:
    def test_sign_and_verify(self, device_key):
        report = sign_report(_state(), device_key.private)
        assert verify_report(report, device_key.public)

    def test_tampered_digest_rejected(self, device_key):
        report = sign_report(_state(), device_key.private)
        forged = AttestationReport(
            input_digest=sha256(b"other"),
            output_digest=report.output_digest,
            weights_digest=report.weights_digest,
            instruction_digest=report.instruction_digest,
            session_binding=report.session_binding,
            signature=report.signature,
        )
        assert not verify_report(forged, device_key.public)

    def test_session_binding_matters(self, device_key):
        report = sign_report(_state(), device_key.private)
        forged = AttestationReport(
            report.input_digest, report.output_digest, report.weights_digest,
            report.instruction_digest, sha256(b"other-session"), report.signature,
        )
        assert not verify_report(forged, device_key.public)

    def test_wrong_device_key_rejected(self, device_key):
        other = EcdsaKeyPair.generate(HmacDrbg(b"other-dev"))
        report = sign_report(_state(), device_key.private)
        assert not verify_report(report, other.public)

    def test_garbage_signature_rejected(self, device_key):
        report = sign_report(_state(), device_key.private)
        forged = AttestationReport(
            report.input_digest, report.output_digest, report.weights_digest,
            report.instruction_digest, report.session_binding, b"nonsense",
        )
        assert not verify_report(forged, device_key.public)
