"""Memory protection unit: the Enc/IV engines over simulated DRAM."""

import pytest

from repro.core.errors import IntegrityError, ProtocolError, SessionError
from repro.core.mpu import CHUNK_BYTES, MemoryProtectionUnit, SimulatedDram
from repro.protection.counters import VersionNumber


@pytest.fixture
def mpu():
    unit = MemoryProtectionUnit(SimulatedDram(1 << 16))
    unit.enable(b"\x01" * 16, b"\x02" * 16, integrity=True)
    return unit


@pytest.fixture
def mpu_c_only():
    unit = MemoryProtectionUnit(SimulatedDram(1 << 16))
    unit.enable(b"\x01" * 16, b"\x02" * 16, integrity=False)
    return unit


VN1 = VersionNumber.for_feature(1, 1)
VN2 = VersionNumber.for_feature(1, 2)


class TestRoundTrip:
    def test_write_read(self, mpu):
        data = bytes(range(256)) * 4
        mpu.write_protected(0, data, VN1)
        assert mpu.read_protected(0, len(data), VN1) == data

    def test_ciphertext_differs_from_plaintext(self, mpu):
        data = b"\xAA" * 1024
        mpu.write_protected(0, data, VN1)
        assert bytes(mpu.dram.data[:1024]) != data

    def test_unaligned_length_padded(self, mpu):
        data = b"hello guardnn"
        mpu.write_protected(512, data, VN1)
        assert mpu.read_protected(512, len(data), VN1) == data

    def test_wrong_vn_gives_garbage_in_c_mode(self, mpu_c_only):
        data = b"\x55" * 512
        mpu_c_only.write_protected(0, data, VN1)
        assert mpu_c_only.read_protected(0, 512, VN2) != data

    def test_disabled_mpu_refuses(self):
        unit = MemoryProtectionUnit(SimulatedDram(1 << 12))
        with pytest.raises(SessionError):
            unit.write_protected(0, b"x" * 16, VN1)

    def test_alignment_enforced(self, mpu):
        with pytest.raises(ProtocolError):
            mpu.write_protected(100, b"x" * 16, VN1)

    def test_out_of_bounds(self, mpu):
        with pytest.raises(ProtocolError):
            mpu.write_protected(0, b"x" * (1 << 17), VN1)


class TestIntegrity:
    def test_bitflip_detected(self, mpu):
        mpu.write_protected(0, b"\x11" * 1024, VN1)
        mpu.dram.data[100] ^= 0x01
        with pytest.raises(IntegrityError):
            mpu.read_protected(0, 1024, VN1)

    def test_mac_store_tamper_detected(self, mpu):
        mpu.write_protected(0, b"\x11" * 1024, VN1)
        tag = mpu.dram.mac_store[0]
        mpu.dram.mac_store[0] = tag[:-1] + bytes([tag[-1] ^ 1])
        with pytest.raises(IntegrityError):
            mpu.read_protected(0, 1024, VN1)

    def test_splice_detected(self, mpu):
        """Move valid ciphertext+MAC to a different address: the MAC
        binds the address, so relocation fails."""
        mpu.write_protected(0, b"\x11" * CHUNK_BYTES, VN1)
        mpu.write_protected(1024, b"\x22" * CHUNK_BYTES, VN1)
        blob, macs = mpu.dram.snapshot(0, CHUNK_BYTES)
        mpu.dram.data[1024 : 1024 + CHUNK_BYTES] = blob
        mpu.dram.mac_store[1024] = macs[0]
        with pytest.raises(IntegrityError):
            mpu.read_protected(1024, CHUNK_BYTES, VN1)

    def test_replay_detected_without_tree(self, mpu):
        """GuardNN's headline integrity property: replaying a stale
        (ciphertext, MAC) snapshot at the same address is caught because
        the *current* VN (on chip) differs — no Merkle tree involved."""
        mpu.write_protected(0, b"old secret state", VN1)
        stale = mpu.dram.snapshot(0, CHUNK_BYTES)
        mpu.write_protected(0, b"new secret state", VN2)
        mpu.dram.restore(0, *stale)
        with pytest.raises(IntegrityError):
            mpu.read_protected(0, 16, VN2)

    def test_c_mode_does_not_detect_but_never_leaks(self, mpu_c_only):
        """Confidentiality-only mode: tampering silently corrupts (by
        design), but what comes back is never the attacker's choice of
        plaintext, and DRAM still holds ciphertext only."""
        secret = b"\x42" * 512
        mpu_c_only.write_protected(0, secret, VN1)
        mpu_c_only.dram.data[0] ^= 0xFF
        corrupted = mpu_c_only.read_protected(0, 512, VN1)
        assert corrupted != secret
        # the flip only affects the flipped byte (CTR is a stream mode)
        assert corrupted[1:] == secret[1:]

    def test_wrong_vn_detected_in_ci_mode(self, mpu):
        mpu.write_protected(0, b"\x11" * 512, VN1)
        with pytest.raises(IntegrityError):
            mpu.read_protected(0, 512, VN2)


class TestStateReset:
    def test_enable_clears_dram(self, mpu):
        mpu.write_protected(0, b"\x99" * 512, VN1)
        mpu.enable(b"\x03" * 16, b"\x04" * 16, integrity=True)
        assert bytes(mpu.dram.data[:512]) == bytes(512)
        assert not mpu.dram.mac_store

    def test_fresh_keys_change_ciphertext(self):
        unit = MemoryProtectionUnit(SimulatedDram(1 << 12))
        unit.enable(b"\x01" * 16, b"\x02" * 16, integrity=False)
        unit.write_protected(0, b"\x77" * 512, VN1)
        ct1 = bytes(unit.dram.data[:512])
        unit.enable(b"\x0A" * 16, b"\x0B" * 16, integrity=False)
        unit.write_protected(0, b"\x77" * 512, VN1)
        assert bytes(unit.dram.data[:512]) != ct1


class TestVnLog:
    def test_log_records_writes(self):
        unit = MemoryProtectionUnit(SimulatedDram(1 << 12), debug_log_vns=True)
        unit.enable(b"\x01" * 16, b"\x02" * 16, integrity=False)
        unit.write_protected(0, b"x" * 32, VN1)
        assert len(unit.vn_log) == 2  # two 16-B blocks
        assert unit.vn_log[0].vn == VN1.value


def test_dram_geometry_validated():
    with pytest.raises(ValueError):
        SimulatedDram(100)
