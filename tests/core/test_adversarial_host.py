"""Adversarial-host fuzzing: the central security claim.

"GuardNN can ensure confidentiality without trusting a host processor by
designing its ISA so that sensitive information is always encrypted no
matter which instruction is executed" (Section II-B). We model the
strongest software adversary: it issues *random* instruction sequences
with random operands, tampers with DRAM between instructions, and
records every byte the device returns. Then we assert that no secret
(weights, inputs, or any value derived from them in plaintext) ever
appears in what it observed, nor in DRAM.
"""

import numpy as np
import pytest

from repro.core.compute import gemm_int8
from repro.core.host import AdversarialHost, HonestHost, MlpSpec
from repro.core.isa import (
    ExportOutput,
    Forward,
    GetPK,
    SetInput,
    SetReadCTR,
    SetWeight,
    SignOutput,
)
from repro.core.session import UserSession
from repro.crypto.rng import HmacDrbg


def _random_instruction(rng, sealed_blobs):
    """A random instruction with plausible-to-hostile operands."""
    kind = rng.integers(0, 7)
    base = int(rng.integers(0, 64)) * 512
    if kind == 0:
        blob = sealed_blobs[int(rng.integers(0, len(sealed_blobs)))] if sealed_blobs else bytes(64)
        return SetWeight(base=base, blob=blob)
    if kind == 1:
        blob = sealed_blobs[int(rng.integers(0, len(sealed_blobs)))] if sealed_blobs else bytes(64)
        return SetInput(base=base, blob=blob)
    if kind == 2:
        dims = [int(rng.integers(1, 16)) for _ in range(3)]
        return Forward(input_base=base, weight_base=int(rng.integers(0, 64)) * 512,
                       output_base=int(rng.integers(0, 64)) * 512,
                       m=dims[0], k=dims[1], n=dims[2],
                       relu=bool(rng.integers(0, 2)), shift=int(rng.integers(0, 12)))
    if kind == 3:
        return ExportOutput(base=base, size=int(rng.integers(1, 2048)))
    if kind == 4:
        return SetReadCTR(base=base, size=512 * int(rng.integers(1, 8)),
                          ctr_fw=int(rng.integers(0, 1000)))
    if kind == 5:
        return SignOutput()
    return GetPK()


@pytest.fixture
def victim_setup(established, rng):
    """An honest user loads secrets; then the adversary takes over the
    host."""
    device, user, host = established
    weights = rng.integers(-15, 15, size=(64, 32), dtype=np.int8)
    x = rng.integers(-15, 15, size=(8, 64), dtype=np.int8)
    spec = MlpSpec([weights])
    host._layer_shapes = [weights.shape]
    host._shift = spec.shift
    host.load_weights(user, spec)
    host.load_input(user, x)
    secrets = [weights.tobytes(), x.tobytes(),
               gemm_int8(x, weights, relu=False).tobytes()]
    return device, user, host, secrets


def _assert_no_secret_window(blob: bytes, secrets, window: int = 12):
    """No 12-byte window of any secret appears in the blob (12 bytes of
    int8 data has ~2^-96 chance of colliding by accident)."""
    for secret in secrets:
        for start in range(0, max(1, len(secret) - window), window):
            assert secret[start : start + window] not in blob


class TestAdversarialHost:
    def test_random_instruction_fuzz_never_leaks(self, victim_setup):
        device, user, host, secrets = victim_setup
        adversary = AdversarialHost(device, np.random.default_rng(99))
        # replayable sealed blobs the adversary captured off the wire
        captured = [user.seal_input(np.zeros((1, 64), dtype=np.int8))]
        for step in range(300):
            instr = _random_instruction(adversary.rng, captured)
            adversary.try_execute(instr)
            if step % 37 == 0:
                adversary.tamper_dram(n_flips=4)
        observed = b"".join(adversary.observed) + adversary.snapshot_dram()
        _assert_no_secret_window(observed, secrets)

    def test_export_of_weight_region_is_ciphertext(self, victim_setup):
        """The adversary exports the weight region directly: it gets a
        sealed blob (it cannot open) and the decrypt-with-wrong-VN
        content inside is garbage anyway. Either way: no weight bytes."""
        device, user, host, secrets = victim_setup
        adversary = AdversarialHost(device, np.random.default_rng(7))
        response = adversary.try_execute(ExportOutput(base=host._weight_bases[0], size=512))
        if response is not None:
            _assert_no_secret_window(response.encode(), secrets)

    def test_dram_is_ciphertext_after_honest_run(self, victim_setup):
        device, user, host, secrets = victim_setup
        _assert_no_secret_window(bytes(device.untrusted_memory.data), secrets)

    def test_forward_to_same_region_no_pad_reuse_leak(self, victim_setup):
        """Hostile schedule: Forward writes its output over the input
        region. Input-domain vs feature-domain VNs prevent pad reuse, so
        XORing old and new ciphertext reveals nothing."""
        device, user, host, secrets = victim_setup
        in_base = host._input_base
        before = bytes(device.untrusted_memory.data[in_base : in_base + 512])
        adversary = AdversarialHost(device, np.random.default_rng(3))
        adversary.try_execute(Forward(input_base=in_base, weight_base=host._weight_bases[0],
                                      output_base=in_base, m=8, k=64, n=32))
        after = bytes(device.untrusted_memory.data[in_base : in_base + 512])
        xored = bytes(a ^ b for a, b in zip(before, after))
        _assert_no_secret_window(before + after + xored, secrets)
