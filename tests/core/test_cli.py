"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheme", "rot13"])

    def test_bench_quick_full_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--quick", "--full"])


class TestBench:
    def test_list_kernels(self, capsys):
        assert main(["bench", "--list-kernels"]) == 0
        names = capsys.readouterr().out.split()
        assert "sha256_batch" in names
        assert "merkle_updates" in names

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit, match="unknown kernel"):
            main(["bench", "--kernel", "rot13"])

    def test_single_kernel_run_writes_report(self, capsys, tmp_path):
        out_file = str(tmp_path / "bench.json")
        assert main(["bench", "--kernel", "merkle_updates", "--repeat", "1",
                     "--output", out_file]) == 0
        import json

        report = json.load(open(out_file))
        row = report["kernels"]["merkle_updates"]
        assert row["speedup"] > 0
        assert row["tree_height"] == 10  # 1024 leaves in quick mode
        assert "fast_us_per_update" in row
        assert "sha256_batch" not in report["kernels"]  # filtered run


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--network", "alexnet", "--scheme", "guardnn-ci"]) == 0
        out = capsys.readouterr().out
        assert "normalized time" in out
        assert "GuardNN_CI" in out

    def test_simulate_training(self, capsys):
        assert main(["simulate", "--network", "alexnet", "--scheme", "np",
                     "--training", "--batch", "2"]) == 0
        assert "training" in capsys.readouterr().out

    def test_figure3_single_network(self, capsys):
        assert main(["figure3", "--network", "mobilenet"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet" in out and "BP" in out

    def test_fpga_table(self, capsys):
        assert main(["fpga-table", "--precision", "8"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "1024" in out

    def test_compile_ok(self, capsys):
        assert main(["compile", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "VN-unique=True" in out

    def test_compile_training(self, capsys):
        assert main(["compile", "--network", "mobilenet", "--training"]) == 0
        assert "UpdateWeight" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "result correct: True" in capsys.readouterr().out

    def test_traffic(self, capsys):
        assert main(["traffic"]) == 0
        out = capsys.readouterr().out
        assert "dlrm" in out


class TestSweep:
    def test_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table2-fpga" in out

    def test_preset_markdown(self, capsys):
        assert main(["sweep", "--preset", "asic-overhead", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| ")
        assert "344" in out

    def test_adhoc_grid_csv(self, capsys):
        assert main(["sweep", "--models", "alexnet", "--schemes", "np,bp",
                     "--format", "csv", "--no-cache"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l]
        assert lines[0].startswith("model,")
        assert len(lines) == 3  # header + NP + BP

    def test_preset_to_file_with_cache(self, capsys, tmp_path):
        import repro.experiments.runner as runner_module

        cache_dir = str(tmp_path / "cache")
        out_file = str(tmp_path / "fig3.json")
        args = ["sweep", "--preset", "fig3-inference", "--format", "json",
                "--cache-dir", cache_dir, "--out", out_file]
        assert main(args) == 0
        first = open(out_file).read()
        assert "0 hits, 36 misses" in capsys.readouterr().err
        # drop the in-memory first level: this test is about on-disk
        # persistence, i.e. what a second *process* would see
        runner_module._MEMORY_CACHE.clear()
        assert main(args) == 0  # second run: all 36 jobs from disk
        assert "36 hits, 0 misses" in capsys.readouterr().err
        assert open(out_file).read() == first

    def test_preset_and_models_conflict(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--preset", "fig3", "--models", "alexnet"])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit, match="unknown sweep"):
            main(["sweep", "--preset", "nope", "--no-cache"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["sweep", "--models", "alexnet", "--schemes", "rot13",
                  "--no-cache"])
