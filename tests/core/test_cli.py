"""CLI surface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheme", "rot13"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--network", "alexnet", "--scheme", "guardnn-ci"]) == 0
        out = capsys.readouterr().out
        assert "normalized time" in out
        assert "GuardNN_CI" in out

    def test_simulate_training(self, capsys):
        assert main(["simulate", "--network", "alexnet", "--scheme", "np",
                     "--training", "--batch", "2"]) == 0
        assert "training" in capsys.readouterr().out

    def test_figure3_single_network(self, capsys):
        assert main(["figure3", "--network", "mobilenet"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet" in out and "BP" in out

    def test_fpga_table(self, capsys):
        assert main(["fpga-table", "--precision", "8"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "1024" in out

    def test_compile_ok(self, capsys):
        assert main(["compile", "--network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "VN-unique=True" in out

    def test_compile_training(self, capsys):
        assert main(["compile", "--network", "mobilenet", "--training"]) == 0
        assert "UpdateWeight" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "result correct: True" in capsys.readouterr().out

    def test_traffic(self, capsys):
        assert main(["traffic"]) == 0
        out = capsys.readouterr().out
        assert "dlrm" in out
