"""Attack scenarios from the threat model (Section II-A / Table I):
physical tampering, replay, splicing, hostile read counters."""

import numpy as np
import pytest

from repro.core.errors import IntegrityError
from repro.core.host import HonestHost, MlpSpec
from repro.core.isa import ExportOutput, Forward, SetReadCTR
from repro.core.mpu import CHUNK_BYTES


@pytest.fixture
def loaded(established, rng):
    """Session with weights and input imported, one Forward executed."""
    device, user, host = established
    spec = MlpSpec([rng.integers(-15, 15, size=(64, 32), dtype=np.int8)])
    x = rng.integers(-15, 15, size=(8, 64), dtype=np.int8)
    host._layer_shapes = [w.shape for w in spec.weights]
    host._shift = spec.shift
    host.load_weights(user, spec)
    host.load_input(user, x)
    out_base, out_size = host.run_inference(spec, batch=8)
    return device, user, host, spec, x, out_base, out_size


class TestPhysicalTampering:
    def test_weight_bitflip_detected_on_use(self, loaded):
        device, user, host, spec, x, out_base, out_size = loaded
        # corrupt the weight region in DRAM, then force a re-run
        device.untrusted_memory.data[0] ^= 0x01
        with pytest.raises(IntegrityError):
            device.execute(
                Forward(input_base=host._input_base, weight_base=0,
                        output_base=out_base + 4096, m=8, k=64, n=32)
            )

    def test_output_tamper_detected_on_export(self, loaded):
        device, user, host, spec, x, out_base, out_size = loaded
        device.untrusted_memory.data[out_base] ^= 0x80
        device.execute(SetReadCTR(base=out_base, size=out_size, ctr_fw=1))
        with pytest.raises(IntegrityError):
            device.execute(ExportOutput(base=out_base, size=out_size))


class TestReplay:
    def test_stale_feature_replay_detected(self, established, rng):
        """Record the features Forward #1 wrote, let Forward #2
        overwrite them, replay the stale bytes, read with the *current*
        counter: MAC mismatch, no tree required."""
        device, user, host = established
        spec = MlpSpec([rng.integers(-15, 15, size=(64, 64), dtype=np.int8),
                        rng.integers(-15, 15, size=(64, 64), dtype=np.int8)])
        x = rng.integers(-15, 15, size=(8, 64), dtype=np.int8)
        host._layer_shapes = [w.shape for w in spec.weights]
        host._shift = spec.shift
        host.load_weights(user, spec)
        host.load_input(user, x)

        # Forward 1 writes features at some base; snapshot them
        out1 = host._alloc(8 * 64)
        device.execute(Forward(input_base=host._input_base, weight_base=host._weight_bases[0],
                               output_base=out1, m=8, k=64, n=64, relu=True))
        stale = device.untrusted_memory.snapshot(out1, CHUNK_BYTES)

        # Forward 2 overwrites the same region (ping-pong reuse)
        device.execute(SetReadCTR(base=out1, size=8 * 64, ctr_fw=1))
        device.execute(Forward(input_base=out1, weight_base=host._weight_bases[1],
                               output_base=out1, m=8, k=64, n=64))

        # replay the stale snapshot and try to read as the new version
        device.untrusted_memory.restore(out1, *stale)
        device.execute(SetReadCTR(base=out1, size=8 * 64, ctr_fw=2))
        with pytest.raises(IntegrityError):
            device.execute(ExportOutput(base=out1, size=8 * 64))


class TestSplicing:
    def test_relocated_ciphertext_detected(self, loaded):
        device, user, host, spec, x, out_base, out_size = loaded
        dram = device.untrusted_memory
        # copy the (valid) weight chunk over the output chunk, MAC too
        blob, macs = dram.snapshot(0, CHUNK_BYTES)
        dram.data[out_base : out_base + CHUNK_BYTES] = blob
        dram.mac_store[out_base] = macs[0]
        device.execute(SetReadCTR(base=out_base, size=out_size, ctr_fw=1))
        with pytest.raises(IntegrityError):
            device.execute(ExportOutput(base=out_base, size=out_size))


class TestHostileReadCounters:
    def test_wrong_read_ctr_exports_garbage_not_secrets(self, established, rng):
        """Section II-E: CTR_F,R 'does not need to be trusted for
        confidentiality, as it only affects decryption'. In C-only mode
        the wrong counter yields garbage — never the plaintext of any
        other tensor."""
        device, user, host = established
        # re-establish confidentiality-only so nothing raises
        fresh = type(user)(user._ca_root, __import__("repro.crypto.rng", fromlist=["HmacDrbg"]).HmacDrbg(b"fresh2"))
        fresh.authenticate_device(host.fetch_device_info())
        host.establish_session(fresh, enable_integrity=False)

        spec = MlpSpec([rng.integers(-15, 15, size=(64, 32), dtype=np.int8)])
        x = rng.integers(-15, 15, size=(8, 64), dtype=np.int8)
        host._layer_shapes = [w.shape for w in spec.weights]
        host._shift = spec.shift
        host.load_weights(fresh, spec)
        host.load_input(fresh, x)
        out_base, out_size = host.run_inference(spec, batch=8)

        # hostile host declares a bogus read counter and exports
        device.execute(SetReadCTR(base=out_base, size=out_size, ctr_fw=777))
        sealed = device.execute(ExportOutput(base=out_base, size=out_size))
        garbage = fresh.open_output(sealed, (8, 32))

        correct = spec.reference_forward(x)
        assert not np.array_equal(garbage, correct)
        # and the garbage is not any secret tensor either
        assert garbage.tobytes() != x.tobytes()[: garbage.nbytes]
        assert garbage.tobytes() != spec.weights[0].tobytes()[: garbage.nbytes]
