"""Session transport: seal/open, tamper, reorder, reflection."""

import pytest

from repro.core.channel import SealedMessage, device_channel, user_channel
from repro.core.errors import ProtocolError
from repro.crypto.keys import SessionKeys
from repro.crypto.rng import HmacDrbg


@pytest.fixture
def channels():
    shared = b"\x07" * 32
    user_keys = SessionKeys.derive_user_side(shared)
    device_keys = SessionKeys.derive_device_side(shared, HmacDrbg(b"dev"))
    user = user_channel(user_keys, HmacDrbg(b"user-nonce"))
    device = device_channel(device_keys, HmacDrbg(b"device-nonce"))
    return user, device


class TestSealOpen:
    def test_round_trip_user_to_device(self, channels):
        user, device = channels
        msg = user.seal(b"weights blob")
        assert device.open(msg) == b"weights blob"

    def test_round_trip_device_to_user(self, channels):
        user, device = channels
        msg = device.seal(b"output blob")
        assert user.open(msg) == b"output blob"

    def test_empty_message(self, channels):
        user, device = channels
        assert device.open(user.seal(b"")) == b""

    def test_ciphertext_hides_plaintext(self, channels):
        user, _ = channels
        secret = b"A" * 64
        msg = user.seal(secret)
        assert secret not in msg.encode()


class TestTampering:
    def test_flipped_ciphertext_rejected(self, channels):
        user, device = channels
        msg = user.seal(b"payload")
        bad = SealedMessage(msg.nonce, bytes([msg.ciphertext[0] ^ 1]) + msg.ciphertext[1:],
                            msg.tag)
        with pytest.raises(ProtocolError):
            device.open(bad)

    def test_flipped_nonce_rejected(self, channels):
        user, device = channels
        msg = user.seal(b"payload")
        bad = SealedMessage(bytes([msg.nonce[0] ^ 1]) + msg.nonce[1:], msg.ciphertext, msg.tag)
        with pytest.raises(ProtocolError):
            device.open(bad)

    def test_flipped_tag_rejected(self, channels):
        user, device = channels
        msg = user.seal(b"payload")
        bad = SealedMessage(msg.nonce, msg.ciphertext, msg.tag[:-1] + bytes([msg.tag[-1] ^ 1]))
        with pytest.raises(ProtocolError):
            device.open(bad)


class TestOrderingAndReflection:
    def test_reorder_rejected(self, channels):
        """Sequence numbers in the MAC stop the host replaying blobs out
        of order."""
        user, device = channels
        first = user.seal(b"one")
        second = user.seal(b"two")
        with pytest.raises(ProtocolError):
            device.open(second)  # expects seq 0, got seq 1's tag

    def test_replay_rejected(self, channels):
        user, device = channels
        msg = user.seal(b"one")
        device.open(msg)
        with pytest.raises(ProtocolError):
            device.open(msg)  # receiver seq advanced

    def test_reflection_rejected(self, channels):
        """A user-sealed message cannot be fed back to the user as if it
        came from the device (direction labels differ)."""
        user, _ = channels
        msg = user.seal(b"boomerang")
        with pytest.raises(ProtocolError):
            user.open(msg)


class TestEncoding:
    def test_decode_round_trip(self, channels):
        user, _ = channels
        msg = user.seal(b"x" * 100)
        decoded = SealedMessage.decode(msg.encode())
        assert decoded == msg

    def test_decode_too_short(self):
        with pytest.raises(ProtocolError):
            SealedMessage.decode(b"short")
