"""Instruction encodings (the attestation hash input)."""

import pytest

from repro.core.isa import (
    ExportOutput,
    Forward,
    GetPK,
    InitSession,
    SetInput,
    SetReadCTR,
    SetWeight,
    SignOutput,
    UpdateWeight,
)

ALL = [GetPK(), InitSession(user_offer=b"o", user_identity=b"i"),
       SetWeight(base=512, blob=b"b"), SetInput(base=1024, blob=b"c"),
       Forward(input_base=0, weight_base=512, output_base=1024, m=2, k=3, n=4),
       ExportOutput(base=1024, size=8), SignOutput(),
       SetReadCTR(base=0, size=512, ctr_fw=3),
       UpdateWeight(weight_base=512, grad_base=2048, k=3, n=4)]


class TestEncoding:
    def test_opcodes_unique(self):
        opcodes = {type(i).OPCODE for i in ALL}
        assert len(opcodes) == len(ALL)

    def test_encodings_distinct(self):
        encodings = {i.encode() for i in ALL}
        assert len(encodings) == len(ALL)

    def test_encoding_starts_with_opcode(self):
        for instr in ALL:
            assert instr.encode()[0] == type(instr).OPCODE

    def test_length_field_consistent(self):
        for instr in ALL:
            encoded = instr.encode()
            body_len = int.from_bytes(encoded[1:5], "big")
            assert len(encoded) == 5 + body_len

    def test_operand_change_changes_encoding(self):
        a = Forward(input_base=0, weight_base=512, output_base=1024, m=2, k=3, n=4)
        b = Forward(input_base=0, weight_base=512, output_base=1024, m=2, k=3, n=5)
        assert a.encode() != b.encode()

    def test_relu_flag_encoded(self):
        a = Forward(m=1, k=1, n=1, relu=False)
        b = Forward(m=1, k=1, n=1, relu=True)
        assert a.encode() != b.encode()

    def test_transpose_flags_encoded(self):
        base = Forward(m=1, k=1, n=1)
        ta = Forward(m=1, k=1, n=1, transpose_a=True)
        tb = Forward(m=1, k=1, n=1, transpose_b=True)
        assert len({base.encode(), ta.encode(), tb.encode()}) == 3

    def test_update_weight_fields_encoded(self):
        a = UpdateWeight(weight_base=0, grad_base=512, k=2, n=2, lr_shift=3)
        b = UpdateWeight(weight_base=0, grad_base=512, k=2, n=2, lr_shift=4)
        assert a.encode() != b.encode()

    def test_integrity_flag_encoded(self):
        a = InitSession(user_offer=b"o", user_identity=b"i", enable_integrity=True)
        b = InitSession(user_offer=b"o", user_identity=b"i", enable_integrity=False)
        assert a.encode() != b.encode()

    def test_read_ctr_optional_ctr_in(self):
        a = SetReadCTR(base=0, size=512, ctr_fw=3)
        b = SetReadCTR(base=0, size=512, ctr_fw=3, ctr_in=0)
        assert a.encode() != b.encode()

    def test_instructions_hashable_and_frozen(self):
        s = {GetPK(), GetPK(), SignOutput()}
        assert len(s) == 2
        with pytest.raises(Exception):
            GetPK().OPCODE2 = 1  # frozen dataclass rejects new attrs
