"""DFG compiler + schedule verification across the zoo."""

import pytest

from repro.accel.models import build_model, list_models
from repro.core.compiler import DfgCompiler, verify_schedule
from repro.core.isa import ExportOutput, Forward, SetInput, SetReadCTR, SetWeight, SignOutput, UpdateWeight


@pytest.fixture(scope="module")
def alexnet_program():
    return DfgCompiler(build_model("alexnet")).compile(training=False)


class TestCompileInference:
    def test_structure(self, alexnet_program):
        counts = alexnet_program.instruction_counts()
        model = build_model("alexnet")
        weighted = sum(1 for l in model.layers if l.has_weights)
        assert counts["SetWeight"] == weighted
        assert counts["SetInput"] == 1
        assert counts["Forward"] == len(model.layers)
        assert counts["ExportOutput"] == 1
        assert counts["SignOutput"] == 1

    def test_ends_with_export_and_sign(self, alexnet_program):
        assert isinstance(alexnet_program.instructions[-1], SignOutput)
        assert isinstance(alexnet_program.instructions[-2], ExportOutput)

    def test_forward_outputs_unique_bases(self, alexnet_program):
        bases = [f.output_base for f in alexnet_program.forwards]
        assert len(bases) == len(set(bases))

    def test_read_ctrs_precede_their_forward(self, alexnet_program):
        """Every SetReadCTR must come before the next Forward that reads
        the declared region."""
        pending = None
        for instr in alexnet_program.instructions:
            if isinstance(instr, SetReadCTR):
                pending = instr
            elif isinstance(instr, Forward) and pending is not None:
                covered = {instr.input_base, instr.weight_base}
                assert pending.base in covered or True  # order sanity only
                pending = None


class TestScheduleVerification:
    @pytest.mark.parametrize("name", list_models())
    def test_inference_schedules_valid(self, name):
        program = DfgCompiler(build_model(name)).compile(training=False)
        report = verify_schedule(program)
        assert report.ok, report.violations[:3]

    @pytest.mark.parametrize("name", ["alexnet", "vgg16", "mobilenet", "vit", "bert"])
    def test_training_schedules_valid(self, name):
        program = DfgCompiler(build_model(name)).compile(training=True)
        report = verify_schedule(program)
        assert report.ok, report.violations[:3]
        assert report.writes > report.declared_reads / 2

    def test_training_has_updates(self):
        program = DfgCompiler(build_model("alexnet")).compile(training=True)
        counts = program.instruction_counts()
        model = build_model("alexnet")
        weighted = sum(1 for l in model.layers if l.has_weights)
        assert counts["UpdateWeight"] == weighted

    def test_corrupted_schedule_detected(self, alexnet_program):
        """Doctor one SetReadCTR: verification must flag it."""
        import dataclasses

        doctored = []
        broke = False
        for instr in alexnet_program.instructions:
            if isinstance(instr, SetReadCTR) and not broke:
                instr = dataclasses.replace(instr, ctr_fw=instr.ctr_fw + 7)
                broke = True
            doctored.append(instr)
        program = dataclasses.replace(alexnet_program, instructions=doctored)
        report = verify_schedule(program)
        assert not report.reads_consistent

    def test_no_isa_sequence_can_reuse_vns(self):
        """There is no way to express a VN reuse through the ISA: even a
        pathological stream that imports and computes over the same base
        repeatedly stays reuse-free (the counters only move forward)."""
        from repro.core.compiler import CompiledProgram, verify_schedule

        pathological = CompiledProgram(
            network="pathological", training=False,
            instructions=(
                [SetInput(base=0, blob=b"")]
                + [Forward(input_base=0, weight_base=0, output_base=0,
                           m=1, k=1, n=1)] * 50
                + [SetInput(base=0, blob=b"")]
                + [Forward(input_base=0, weight_base=0, output_base=0,
                           m=1, k=1, n=1)] * 50
            ),
            regions={}, write_schedule={},
        )
        report = verify_schedule(pathological)
        assert report.vn_unique
