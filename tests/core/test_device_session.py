"""The GuardNN device + user session protocol flow."""

import numpy as np
import pytest

from repro.core.device import GuardNNDevice
from repro.core.errors import ProtocolError, SessionError
from repro.core.host import HonestHost, MlpSpec
from repro.core.isa import (
    ExportOutput,
    Forward,
    GetPK,
    SetInput,
    SetReadCTR,
    SetWeight,
    SignOutput,
)
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg


class TestGetPk:
    def test_works_without_session(self, device):
        info = device.execute(GetPK())
        assert info.public_key[0] == 0x04
        assert info.certificate.device_id == b"accel-under-test"

    def test_certificate_verifies(self, device, user, host):
        user.authenticate_device(host.fetch_device_info())
        assert user.device_public is not None

    def test_wrong_ca_rejected(self, device, host):
        evil = ManufacturerCA(HmacDrbg(b"evil"))
        stranger = UserSession(evil.root_public, HmacDrbg(b"u"))
        with pytest.raises(SessionError):
            stranger.authenticate_device(host.fetch_device_info())


class TestSessionLifecycle:
    def test_instructions_require_session(self, device):
        for instr in (SetWeight(), SetInput(), Forward(), ExportOutput(),
                      SignOutput(), SetReadCTR()):
            with pytest.raises(SessionError):
                device.execute(instr)

    def test_establish(self, established):
        device, user, host = established
        assert user.established

    def test_malformed_init_session(self, device):
        from repro.core.isa import InitSession

        with pytest.raises(ProtocolError):
            device.execute(InitSession(user_offer=b"junk", user_identity=b"junk"))

    def test_new_session_resets_counters(self, established, user):
        device, _, host = established
        device.mpu.counters.on_set_input()
        fresh_user = UserSession(user._ca_root, HmacDrbg(b"fresh"))
        fresh_user.authenticate_device(host.fetch_device_info())
        host.establish_session(fresh_user)
        assert device.mpu.counters.ctr_in == 0

    def test_session_supports_both_modes(self, device, user, host):
        user.authenticate_device(host.fetch_device_info())
        host.establish_session(user, enable_integrity=False)
        assert not device.mpu.integrity_enabled


class TestFunctionalInference:
    def _run(self, established, rng, sizes, batch=2):
        device, user, host = established
        spec = MlpSpec([rng.integers(-15, 15, size=(sizes[i], sizes[i + 1]), dtype=np.int8)
                        for i in range(len(sizes) - 1)])
        x = rng.integers(-15, 15, size=(batch, sizes[0]), dtype=np.int8)
        out, attested = host.compile_and_run(user, spec, x)
        return out, attested, spec, x

    def test_matches_reference(self, established, rng):
        out, attested, spec, x = self._run(established, rng, [32, 16, 8])
        assert np.array_equal(out, spec.reference_forward(x))

    def test_attestation_verifies(self, established, rng):
        _, attested, _, _ = self._run(established, rng, [32, 16, 8])
        assert attested

    def test_single_layer(self, established, rng):
        out, attested, spec, x = self._run(established, rng, [16, 4], batch=1)
        assert np.array_equal(out, spec.reference_forward(x))
        assert attested

    def test_deep_network(self, established, rng):
        out, _, spec, x = self._run(established, rng, [64, 48, 32, 24, 16, 8])
        assert np.array_equal(out, spec.reference_forward(x))

    def test_dram_never_holds_plaintext(self, established, rng):
        device, user, host = established
        out, _, spec, x = self._run(established, rng, [64, 32, 8], batch=4)
        dram = bytes(device.untrusted_memory.data)
        for w in spec.weights:
            assert w.tobytes() not in dram
        assert x.tobytes() not in dram
        # intermediate activations are also secrets
        hidden = None
        from repro.core.compute import gemm_int8

        hidden = gemm_int8(x, spec.weights[0], relu=True)
        assert hidden.tobytes() not in dram


class TestAttestationDetectsLies:
    def test_wrong_instruction_stream_fails(self, established, rng):
        device, user, host = established
        spec = MlpSpec([rng.integers(-15, 15, size=(16, 8), dtype=np.int8)])
        x = rng.integers(-15, 15, size=(1, 16), dtype=np.int8)
        _, ok = host.compile_and_run(user, spec, x)
        assert ok
        # the host now lies about what it ran: drops one instruction
        report = device.execute(SignOutput())
        assert not user.verify_attestation(report, host.instruction_log[:-1])

    def test_report_from_other_device_fails(self, manufacturer, established, rng):
        device, user, host = established
        spec = MlpSpec([rng.integers(-15, 15, size=(16, 8), dtype=np.int8)])
        x = rng.integers(-15, 15, size=(1, 16), dtype=np.int8)
        host.compile_and_run(user, spec, x)

        other = GuardNNDevice(b"other", manufacturer, seed=b"other-seed", dram_bytes=1 << 20)
        other_host = HonestHost(other)
        other_user = UserSession(manufacturer.root_public, HmacDrbg(b"ou"))
        other_user.authenticate_device(other_host.fetch_device_info())
        other_host.establish_session(other_user)
        foreign_report = other.execute(SignOutput())
        assert not user.verify_attestation(foreign_report, host.instruction_log)
