"""On-device training: transposed Forwards, UpdateWeight, CTR_W flow."""

import numpy as np
import pytest

from repro.core.compute import gemm_int8, sgd_update_int8
from repro.core.device import GuardNNDevice
from repro.core.errors import IntegrityError, ProtocolError
from repro.core.host import MlpSpec, TrainingHost
from repro.core.isa import Forward, UpdateWeight
from repro.core.session import UserSession
from repro.crypto.rng import HmacDrbg


@pytest.fixture
def training_stack(manufacturer, rng):
    device = GuardNNDevice(b"train-dev", manufacturer, seed=b"train-seed",
                           dram_bytes=1 << 20, debug_log_vns=True)
    host = TrainingHost(device)
    user = UserSession(manufacturer.root_public, HmacDrbg(b"train-user"))
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=True)
    return device, host, user


def _specs(rng, sizes):
    w = [rng.integers(-15, 15, size=(sizes[i], sizes[i + 1]), dtype=np.int8)
         for i in range(len(sizes) - 1)]
    return MlpSpec([a.copy() for a in w]), MlpSpec([a.copy() for a in w])


class TestComputePrimitives:
    def test_sgd_update_arithmetic(self):
        w = np.array([[100, -100], [0, 5]], dtype=np.int8)
        g = np.array([[64, -64], [16, -128]], dtype=np.int8)
        out = sgd_update_int8(w, g, lr_shift=4)
        assert out[0, 0] == 96  # 100 - (64>>4)
        assert out[0, 1] == -96
        assert out[1, 0] == -1  # 0 - (16>>4)=... 16>>4=1
        assert out[1, 1] == 13  # 5 - (-128>>4 = -8) = 13

    def test_sgd_update_validations(self):
        w = np.zeros((2, 2), dtype=np.int8)
        with pytest.raises(ValueError):
            sgd_update_int8(w, np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(TypeError):
            sgd_update_int8(w.astype(np.int16), w)
        with pytest.raises(ValueError):
            sgd_update_int8(w, w, lr_shift=99)


class TestTransposedForward:
    def test_transpose_b_matches_numpy(self, training_stack, rng):
        """g @ W^T through the device equals the local reference."""
        device, host, user = training_stack
        spec, _ = _specs(rng, [16, 8])
        host._layer_shapes = [w.shape for w in spec.weights]
        host._shift = spec.shift
        host.load_weights(user, spec)
        g = rng.integers(-15, 15, size=(4, 8), dtype=np.int8)
        host.load_input(user, g)
        out_base = host._alloc(4 * 16)
        device.execute(Forward(input_base=host._input_base,
                               weight_base=host._weight_bases[0],
                               output_base=out_base, m=4, k=8, n=16,
                               transpose_b=True, shift=spec.shift))
        from repro.core.isa import ExportOutput, SetReadCTR

        device.execute(SetReadCTR(base=out_base, size=4 * 16, ctr_fw=1))
        sealed = device.execute(ExportOutput(base=out_base, size=4 * 16))
        got = user.open_output(sealed, (4, 16))
        expected = gemm_int8(g, np.ascontiguousarray(spec.weights[0].T), shift=spec.shift)
        assert np.array_equal(got, expected)


class TestTrainStep:
    def _grad_fn(self, target):
        def fn(output):
            return np.clip(output.astype(np.int32) - target, -128, 127).astype(np.int8)
        return fn

    @pytest.mark.parametrize("sizes", [[32, 8], [32, 16, 8], [24, 16, 12, 8]])
    def test_updated_weights_match_reference(self, training_stack, rng, sizes):
        device, host, user = training_stack
        spec, ref = _specs(rng, sizes)
        x = rng.integers(-15, 15, size=(4, sizes[0]), dtype=np.int8)
        target = rng.integers(-15, 15, size=(4, sizes[-1]), dtype=np.int8)
        updated = host.train_step(user, spec, x, self._grad_fn(target))
        out_ref = ref.reference_forward(x)
        ref_updated = ref.reference_train_step(x, self._grad_fn(target)(out_ref))
        for got, want in zip(updated, ref_updated):
            assert np.array_equal(got, want)

    def test_ctr_w_advances_per_update(self, training_stack, rng):
        device, host, user = training_stack
        spec, _ = _specs(rng, [32, 16, 8])
        x = rng.integers(-15, 15, size=(4, 32), dtype=np.int8)
        target = rng.integers(-15, 15, size=(4, 8), dtype=np.int8)
        host.train_step(user, spec, x, self._grad_fn(target))
        # 2 SetWeight imports + 2 UpdateWeights
        assert device.mpu.counters.ctr_w == 4

    def test_training_vns_unique(self, training_stack, rng):
        """The central invariant survives a whole training iteration."""
        device, host, user = training_stack
        spec, _ = _specs(rng, [32, 16, 8])
        x = rng.integers(-15, 15, size=(4, 32), dtype=np.int8)
        target = rng.integers(-15, 15, size=(4, 8), dtype=np.int8)
        host.train_step(user, spec, x, self._grad_fn(target))
        log = [(e.block_address, e.vn) for e in device.mpu.vn_log]
        assert len(log) == len(set(log))

    def test_gradients_never_plaintext_in_dram(self, training_stack, rng):
        device, host, user = training_stack
        spec, ref = _specs(rng, [32, 8])
        x = rng.integers(-15, 15, size=(4, 32), dtype=np.int8)
        target = rng.integers(-15, 15, size=(4, 8), dtype=np.int8)
        grad_fn = self._grad_fn(target)
        host.train_step(user, spec, x, grad_fn)
        out_ref = ref.reference_forward(x)
        g = grad_fn(out_ref)
        dram = bytes(device.untrusted_memory.data)
        assert g.tobytes() not in dram
        assert x.tobytes() not in dram

    def test_tampered_gradient_detected(self, training_stack, rng):
        """Flipping bits in the stored weight-gradient region breaks the
        UpdateWeight read in CI mode."""
        device, host, user = training_stack
        spec, _ = _specs(rng, [32, 8])
        host._layer_shapes = [w.shape for w in spec.weights]
        host._shift = spec.shift
        host.load_weights(user, spec)
        g = rng.integers(-15, 15, size=(32, 8), dtype=np.int8)
        grad_base = host._alloc(g.size)
        from repro.core.isa import SetInput

        device.execute(SetInput(base=grad_base, blob=user.seal_input(g)))
        device.untrusted_memory.data[grad_base] ^= 0x40
        with pytest.raises(IntegrityError):
            device.execute(UpdateWeight(weight_base=host._weight_bases[0],
                                        grad_base=grad_base, k=32, n=8))

    def test_update_requires_weight_region(self, training_stack, rng):
        device, host, user = training_stack
        spec, _ = _specs(rng, [32, 8])
        host._layer_shapes = [w.shape for w in spec.weights]
        host._shift = spec.shift
        host.load_weights(user, spec)
        with pytest.raises(ProtocolError):
            device.execute(UpdateWeight(weight_base=4096 * 7, grad_base=0, k=32, n=8))
