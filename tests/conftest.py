"""Shared fixtures: a provisioned device, its manufacturer, a remote
user, and an honest host — the full cast of the paper's threat model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import GuardNNDevice
from repro.core.host import HonestHost
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg


@pytest.fixture
def manufacturer() -> ManufacturerCA:
    return ManufacturerCA(HmacDrbg(b"test-manufacturer-seed"))


@pytest.fixture
def device(manufacturer) -> GuardNNDevice:
    return GuardNNDevice(b"accel-under-test", manufacturer, seed=b"test-device-seed",
                         dram_bytes=1 << 20, debug_log_vns=True)


@pytest.fixture
def user(manufacturer) -> UserSession:
    return UserSession(manufacturer.root_public, HmacDrbg(b"test-user-seed"))


@pytest.fixture
def host(device) -> HonestHost:
    return HonestHost(device)


@pytest.fixture
def established(device, user, host):
    """A ready session (integrity on): returns (device, user, host)."""
    user.authenticate_device(host.fetch_device_info())
    host.establish_session(user, enable_integrity=True)
    return device, user, host


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
