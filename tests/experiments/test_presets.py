"""Smoke coverage of the sweep registry: every registered benchmark
sweep expands to jobs and runs to a non-empty, well-formed table."""

import pytest

from repro.experiments import get_sweep, list_sweeps, run_sweep

SWEEP_NAMES = [definition.name for definition in list_sweeps()]


def test_registry_covers_every_paper_artifact():
    assert {
        "fig3", "fig3-inference", "fig3-training", "traffic",
        "extended-zoo", "extended-zoo-full",
        "ablation-vn-cache", "ablation-mac-granularity", "ablation-aes-engines",
        "table2-fpga", "fpga-resources", "instruction-latency",
        "asic-overhead", "table3-comparison", "tcb",
        "dram-characterization", "crypto-kernels",
    } <= set(SWEEP_NAMES)


@pytest.mark.parametrize("name", SWEEP_NAMES)
def test_sweep_builds_jobs(name):
    jobs = get_sweep(name).jobs()
    assert jobs
    assert len(set(jobs)) == len(jobs), "duplicate jobs inflate the grid"


@pytest.mark.parametrize("name", SWEEP_NAMES)
def test_sweep_runs_to_nonempty_table(name):
    table = run_sweep(name)
    assert len(table) > 0
    assert table.columns
    # a stable schema: every row carries every column (no ragged rows
    # within one sweep)
    for row in table.rows:
        assert set(table.columns) >= set(row)


def test_fig3_preset_reproduces_both_figure_tables():
    """The acceptance-criterion sweep: one ``fig3`` run yields both the
    Figure 3a (inference) and Figure 3b (training) series with the
    paper's qualitative shape."""
    table = run_sweep("fig3")
    inference = table.where(mode="inference")
    training = table.where(mode="training")
    assert len(set(inference.column("model"))) == 9
    assert len(set(training.column("model"))) == 8  # no DLRM, as in the paper
    for sub in (inference, training):
        for model in set(sub.column("model")):
            by_scheme = {r["scheme"]: r["normalized"] for r in sub.where(model=model).rows}
            assert (1.0 <= by_scheme["GuardNN_C"] <= by_scheme["GuardNN_CI"]
                    <= by_scheme["BP"]), model
