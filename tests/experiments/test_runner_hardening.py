"""Regression tests for the runner hardening pass that rode along with
``repro serve``: validated ``REPRO_SWEEP_WORKERS``, oldest-first LRU
eviction in the in-memory cache, and failure identity + partial-result
preservation when a job blows up inside a batch."""

import pytest

import repro.experiments.runner as runner_module
from repro import perf
from repro.experiments import Job, ResultCache, Runner
from repro.experiments.jobs import executor
from repro.experiments.runner import (
    JobExecutionError,
    _memory_get,
    _memory_put,
    default_workers,
)


@executor("hardening_probe")
def _hardening_probe(params):
    """Deterministic toy executor; raises on demand so both the serial
    and the forked-pool failure paths can be exercised."""
    if params.get("boom"):
        raise ValueError(f"job {params['x']} exploded")
    return {"x": params["x"], "doubled": params["x"] * 2}


def probe(x, boom=False):
    return Job.make("hardening_probe", x=x, boom=boom)


@pytest.fixture
def fresh_memory_cache():
    previous = perf.fast_enabled()
    perf.set_fast(True)
    runner_module._MEMORY_CACHE.clear()
    yield runner_module._MEMORY_CACHE
    runner_module._MEMORY_CACHE.clear()
    perf.set_fast(previous)
    perf.clear_caches()


class TestDefaultWorkersEnv:
    def test_non_integer_is_actionable_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "abc")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS='abc'"):
            default_workers()

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_is_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", value)
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            default_workers()

    def test_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "  3  ")
        assert default_workers() == 3

    @pytest.mark.parametrize("clear", [True, False])
    def test_unset_or_empty_falls_back_to_cpu_default(self, monkeypatch, clear):
        if clear:
            monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        else:
            monkeypatch.setenv("REPRO_SWEEP_WORKERS", "")
        workers = default_workers()
        assert 1 <= workers <= runner_module._MAX_DEFAULT_WORKERS


class TestMemoryCacheLRU:
    def test_overflow_evicts_oldest_not_everything(self, fresh_memory_cache,
                                                   monkeypatch):
        monkeypatch.setattr(runner_module, "_MEMORY_CACHE_LIMIT", 4)
        jobs = [probe(i) for i in range(5)]
        for job in jobs:
            _memory_put(job, [{"x": job.params["x"]}])
        assert len(fresh_memory_cache) == 4
        assert _memory_get(jobs[0]) is None          # oldest evicted
        for job in jobs[1:]:                          # the rest survive
            assert _memory_get(job) is not None

    def test_lookup_touch_keeps_hot_entry_alive(self, fresh_memory_cache,
                                                monkeypatch):
        monkeypatch.setattr(runner_module, "_MEMORY_CACHE_LIMIT", 4)
        jobs = [probe(i) for i in range(4)]
        for job in jobs:
            _memory_put(job, [{"x": job.params["x"]}])
        assert _memory_get(jobs[0]) is not None       # touch the oldest
        _memory_put(probe(99), [{"x": 99}])           # forces one eviction
        assert _memory_get(jobs[0]) is not None       # hot entry survived
        assert _memory_get(jobs[1]) is None           # next-oldest paid

    def test_refreshing_existing_key_does_not_evict(self, fresh_memory_cache,
                                                    monkeypatch):
        monkeypatch.setattr(runner_module, "_MEMORY_CACHE_LIMIT", 2)
        _memory_put(probe(0), [{"x": 0}])
        _memory_put(probe(1), [{"x": 1}])
        _memory_put(probe(0), [{"x": 0, "fresh": True}])
        assert len(fresh_memory_cache) == 2
        assert _memory_get(probe(1)) is not None
        assert _memory_get(probe(0))[0]["fresh"] is True


class TestJobFailureIdentity:
    def test_serial_failure_names_the_job(self, fresh_memory_cache):
        jobs = [probe(0), probe(1), probe(2, boom=True), probe(3)]
        with pytest.raises(JobExecutionError) as excinfo:
            Runner(workers=1).run(jobs)
        error = excinfo.value
        assert error.job == jobs[2]
        assert "hardening_probe" in str(error)
        assert "exploded" in error.cause
        # everything that ran before the failure is preserved
        assert [position for position, _ in error.completed] == [0, 1]

    def test_serial_completed_rows_are_persisted(self, fresh_memory_cache,
                                                 tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [probe(0), probe(1), probe(2, boom=True)]
        with pytest.raises(JobExecutionError):
            Runner(workers=1, cache=cache).run(jobs)
        for job in jobs[:2]:
            assert _memory_get(job) is not None
            assert cache.get(job) is not None
        assert cache.get(jobs[2]) is None

    def test_parallel_failure_names_the_job(self, fresh_memory_cache):
        jobs = [probe(0), probe(1, boom=True), probe(2), probe(3)]
        runner = Runner(workers=2, chunksize=1)
        with pytest.raises(JobExecutionError) as excinfo:
            runner.run(jobs)
        error = excinfo.value
        assert error.job == jobs[1]
        # one-job chunks: every other chunk completed despite the failure
        assert sorted(position for position, _ in error.completed) == [0, 2, 3]
        rows = dict(error.completed)
        assert rows[2] == [{"x": 2, "doubled": 4}]

    def test_parallel_failure_invalidates_then_rebuilds_pool(
            self, fresh_memory_cache):
        runner = Runner(workers=2, chunksize=1)
        try:
            with pytest.raises(JobExecutionError):
                runner.run([probe(10), probe(11, boom=True)])
            # the possibly-wedged pool is torn down for a clean rebuild
            assert runner._pool is None
            table = runner.run([probe(12), probe(13)])
            assert [row["x"] for row in table.rows] == [12, 13]
            assert runner._pool is not None
        finally:
            runner.close()

    def test_retry_skips_preserved_rows(self, monkeypatch, tmp_path):
        # bypass the in-memory level so the on-disk persistence of the
        # pre-failure rows is what serves the retry
        monkeypatch.setattr(runner_module, "_memory_get", lambda job: None)
        monkeypatch.setattr(runner_module, "_memory_put", lambda job, rows: None)
        cache = ResultCache(str(tmp_path))
        jobs = [probe(20), probe(21, boom=True), probe(22)]
        runner = Runner(workers=1, cache=cache)
        with pytest.raises(JobExecutionError):
            runner.run(jobs)
        hits_before = cache.hits
        table = runner.run([jobs[0], probe(21), jobs[2]])
        assert [row["x"] for row in table.rows] == [20, 21, 22]
        # the preserved pre-failure job came back from cache, not
        # recomputation (serial execution stops at the failing job, so
        # the one job that ran before it is what was preserved)
        assert cache.hits == hits_before + 1
