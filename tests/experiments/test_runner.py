"""Runner: deterministic ordering, worker-count independence, the
two-level cache, the persistent pool, and (on real multi-core hardware)
the parallel speedup."""

import os
import time

import pytest

import repro.experiments.runner as runner_module
from repro.experiments import (
    Job,
    ResultCache,
    Runner,
    SweepSpec,
    get_sweep,
    run_sweep,
)

SPEC = SweepSpec(models=("alexnet", "mobilenet", "googlenet"),
                 schemes=("np", "guardnn-ci", "bp"),
                 modes=("inference", "training"))


@pytest.fixture
def no_memory_cache(monkeypatch):
    """Bypass the in-memory first-level cache so the on-disk layer's
    hit/miss accounting is observable in isolation."""
    monkeypatch.setattr(runner_module, "_memory_get", lambda job: None)
    monkeypatch.setattr(runner_module, "_memory_put", lambda job, rows: None)


@pytest.fixture
def fresh_memory_cache():
    """An empty in-memory first level with the fast path forced on (the
    layer is deliberately inert in scalar mode, so these tests would be
    vacuous under REPRO_SCALAR=1)."""
    from repro import perf

    previous = perf.fast_enabled()
    perf.set_fast(True)
    runner_module._MEMORY_CACHE.clear()
    yield runner_module._MEMORY_CACHE
    runner_module._MEMORY_CACHE.clear()
    perf.set_fast(previous)
    perf.clear_caches()


class TestOrdering:
    def test_rows_follow_job_order(self):
        table = Runner().run(SPEC)
        keys = [(r["mode"], r["model"], r["scheme_key"]) for r in table.rows]
        expected = [( "training" if j.params["training"] else "inference",
                      j.params["model"], j.params["scheme"]) for j in SPEC.jobs()]
        assert keys == expected

    def test_multi_row_executors_flatten_in_place(self):
        jobs = [Job.make("tcb_report"), Job.make("asic_overhead", engines=86)]
        table = Runner().run(jobs)
        assert table.rows[-1]["engines"] == 86
        assert len(table) > 2  # tcb_report contributed several rows


class TestWorkerIndependence:
    def test_results_identical_across_worker_counts(self):
        serial = Runner(workers=1).run(SPEC)
        parallel = Runner(workers=3).run(SPEC)
        assert serial == parallel

    def test_worker_count_does_not_leak_into_rows(self):
        table = Runner(workers=2).run(SweepSpec(models=("alexnet",), schemes=("np",)))
        assert "workers" not in table.columns


class TestCacheIntegration:
    def test_second_run_is_all_hits_and_identical(self, tmp_path, no_memory_cache):
        cache = ResultCache(str(tmp_path))
        first = Runner(cache=cache).run(SPEC)
        assert cache.misses == len(SPEC.jobs())
        cache2 = ResultCache(str(tmp_path))
        second = Runner(cache=cache2).run(SPEC)
        assert (cache2.hits, cache2.misses) == (len(SPEC.jobs()), 0)
        assert first == second

    def test_partial_overlap_only_computes_new_jobs(self, tmp_path, no_memory_cache):
        cache = ResultCache(str(tmp_path))
        Runner(cache=cache).run(SweepSpec(models=("alexnet",), schemes=("np", "bp")))
        cache2 = ResultCache(str(tmp_path))
        Runner(cache=cache2).run(
            SweepSpec(models=("alexnet",), schemes=("np", "bp", "guardnn-ci")))
        assert (cache2.hits, cache2.misses) == (2, 1)

    def test_parallel_run_populates_cache(self, tmp_path, no_memory_cache):
        cache = ResultCache(str(tmp_path))
        Runner(workers=2, cache=cache).run(SPEC)
        cache2 = ResultCache(str(tmp_path))
        table = Runner(workers=1, cache=cache2).run(SPEC)
        assert cache2.misses == 0
        assert len(table) == len(SPEC.jobs())

    def test_run_sweep_cache_true_uses_default_dir(self, tmp_path, monkeypatch,
                                                   fresh_memory_cache):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        run_sweep("asic-overhead", cache=True)
        assert any(name.endswith(".json")
                   for _, _, files in os.walk(str(tmp_path)) for name in files)


class TestMemoryCache:
    """The in-memory first level in front of the on-disk ResultCache."""

    def test_repeat_run_skips_disk_and_recompute(self, tmp_path, fresh_memory_cache):
        spec = SweepSpec(models=("alexnet",), schemes=("np", "bp"))
        cache = ResultCache(str(tmp_path))
        runner = Runner(cache=cache)
        first = runner.run(spec)
        assert cache.misses == 2
        second = runner.run(spec)
        assert first == second
        assert (cache.hits, cache.misses) == (0, 2)  # disk never consulted again

    def test_served_rows_are_copies(self, fresh_memory_cache):
        spec = SweepSpec(models=("alexnet",), schemes=("np",))
        runner = Runner()
        first = runner.run(spec)
        first.rows[0]["total_cycles"] = -1
        second = runner.run(spec)
        assert second.rows[0]["total_cycles"] != -1

    def test_scalar_mode_bypasses_and_clears(self, fresh_memory_cache):
        from repro import perf

        runner = Runner()
        spec = SweepSpec(models=("alexnet",), schemes=("np",))
        runner.run(spec)
        assert fresh_memory_cache
        with perf.scalar_mode():
            assert not fresh_memory_cache  # dropped on mode switch
            runner.run(spec)
            assert not fresh_memory_cache  # and not repopulated

    def test_memory_and_disk_agree(self, tmp_path, fresh_memory_cache):
        spec = SweepSpec(models=("mobilenet",), schemes=("np", "guardnn-ci"))
        cache = ResultCache(str(tmp_path))
        from_compute = Runner(cache=cache).run(spec)
        from_memory = Runner(cache=cache).run(spec)
        fresh_memory_cache.clear()
        cache2 = ResultCache(str(tmp_path))
        from_disk = Runner(cache=cache2).run(spec)
        assert from_compute == from_memory == from_disk


class TestPersistentPool:
    def test_pool_is_reused_across_runs(self, fresh_memory_cache):
        with Runner(workers=2) as runner:
            runner.run(SweepSpec(models=("alexnet",), schemes=("np", "bp")))
            pool = runner._pool
            assert pool is not None
            fresh_memory_cache.clear()  # force re-execution, same pool
            runner.run(SweepSpec(models=("alexnet",), schemes=("np", "bp")))
            assert runner._pool is pool
        assert runner._pool is None  # context exit tears it down

    def test_chunk_payload_roundtrip(self):
        rows_per_job = [
            [{"a": 1, "b": 2}, {"a": 3, "b": 4}],
            [{"c": "x"}],
            [],
            [{"a": 5, "b": 6}, {"b": 7, "a": 8}],  # key order differs
        ]
        decoded = runner_module._decode_rows(
            runner_module._encode_rows(rows_per_job))
        assert decoded == rows_per_job
        assert [list(r) for rows in decoded for r in rows] == \
            [list(r) for rows in rows_per_job for r in rows]


@pytest.mark.slow
class TestParallelSpeedup:
    @pytest.mark.skipif(len(os.sched_getaffinity(0)) < 4,
                        reason="needs >= 4 usable CPUs to demonstrate speedup")
    def test_four_workers_at_least_2x_serial_on_extended_zoo(self):
        """The ISSUE acceptance criterion, gated on hardware that can
        physically exhibit it."""
        jobs = get_sweep("extended-zoo-full").jobs()
        t0 = time.perf_counter()
        serial = Runner(workers=1).run(jobs)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = Runner(workers=4).run(jobs)
        t_parallel = time.perf_counter() - t0
        assert parallel == serial
        assert t_serial / t_parallel >= 2.0
