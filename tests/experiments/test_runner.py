"""Runner: deterministic ordering, worker-count independence, cache
integration, and (on real multi-core hardware) the parallel speedup."""

import os
import time

import pytest

from repro.experiments import (
    Job,
    ResultCache,
    Runner,
    SweepSpec,
    get_sweep,
    run_sweep,
)

SPEC = SweepSpec(models=("alexnet", "mobilenet", "googlenet"),
                 schemes=("np", "guardnn-ci", "bp"),
                 modes=("inference", "training"))


class TestOrdering:
    def test_rows_follow_job_order(self):
        table = Runner().run(SPEC)
        keys = [(r["mode"], r["model"], r["scheme_key"]) for r in table.rows]
        expected = [( "training" if j.params["training"] else "inference",
                      j.params["model"], j.params["scheme"]) for j in SPEC.jobs()]
        assert keys == expected

    def test_multi_row_executors_flatten_in_place(self):
        jobs = [Job.make("tcb_report"), Job.make("asic_overhead", engines=86)]
        table = Runner().run(jobs)
        assert table.rows[-1]["engines"] == 86
        assert len(table) > 2  # tcb_report contributed several rows


class TestWorkerIndependence:
    def test_results_identical_across_worker_counts(self):
        serial = Runner(workers=1).run(SPEC)
        parallel = Runner(workers=3).run(SPEC)
        assert serial == parallel

    def test_worker_count_does_not_leak_into_rows(self):
        table = Runner(workers=2).run(SweepSpec(models=("alexnet",), schemes=("np",)))
        assert "workers" not in table.columns


class TestCacheIntegration:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = Runner(cache=cache).run(SPEC)
        assert cache.misses == len(SPEC.jobs())
        cache2 = ResultCache(str(tmp_path))
        second = Runner(cache=cache2).run(SPEC)
        assert (cache2.hits, cache2.misses) == (len(SPEC.jobs()), 0)
        assert first == second

    def test_partial_overlap_only_computes_new_jobs(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        Runner(cache=cache).run(SweepSpec(models=("alexnet",), schemes=("np", "bp")))
        cache2 = ResultCache(str(tmp_path))
        Runner(cache=cache2).run(
            SweepSpec(models=("alexnet",), schemes=("np", "bp", "guardnn-ci")))
        assert (cache2.hits, cache2.misses) == (2, 1)

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        Runner(workers=2, cache=cache).run(SPEC)
        cache2 = ResultCache(str(tmp_path))
        table = Runner(workers=1, cache=cache2).run(SPEC)
        assert cache2.misses == 0
        assert len(table) == len(SPEC.jobs())

    def test_run_sweep_cache_true_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        run_sweep("asic-overhead", cache=True)
        assert any(name.endswith(".json")
                   for _, _, files in os.walk(str(tmp_path)) for name in files)


@pytest.mark.slow
class TestParallelSpeedup:
    @pytest.mark.skipif(len(os.sched_getaffinity(0)) < 4,
                        reason="needs >= 4 usable CPUs to demonstrate speedup")
    def test_four_workers_at_least_2x_serial_on_extended_zoo(self):
        """The ISSUE acceptance criterion, gated on hardware that can
        physically exhibit it."""
        jobs = get_sweep("extended-zoo-full").jobs()
        t0 = time.perf_counter()
        serial = Runner(workers=1).run(jobs)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = Runner(workers=4).run(jobs)
        t_parallel = time.perf_counter() - t0
        assert parallel == serial
        assert t_serial / t_parallel >= 2.0
