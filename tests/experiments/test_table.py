"""ResultTable: schema stability, filters, emitters, normalization."""

import csv
import io
import json

import pytest

from repro.experiments import ResultTable


@pytest.fixture
def table():
    return ResultTable([
        {"model": "vgg16", "scheme": "NP", "mode": "inference", "batch": 1,
         "total_cycles": 100},
        {"model": "vgg16", "scheme": "BP", "mode": "inference", "batch": 1,
         "total_cycles": 130},
        {"model": "bert", "scheme": "NP", "mode": "inference", "batch": 1,
         "total_cycles": 200},
        {"model": "bert", "scheme": "BP", "mode": "inference", "batch": 1,
         "total_cycles": 240},
    ])


class TestSchema:
    def test_columns_inferred_in_first_seen_order(self):
        t = ResultTable([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert t.columns == ["a", "b", "c"]

    def test_declared_columns_win(self):
        t = ResultTable([{"a": 1, "b": 2}], columns=["b", "a"])
        assert t.columns == ["b", "a"]

    def test_column_access_fills_missing_with_none(self):
        t = ResultTable([{"a": 1}, {"b": 2}])
        assert t.column("a") == [1, None]


class TestFilters:
    def test_where_equality(self, table):
        sub = table.where(model="vgg16")
        assert len(sub) == 2
        assert all(r["model"] == "vgg16" for r in sub.rows)

    def test_where_predicate(self, table):
        sub = table.where(lambda r: r["total_cycles"] > 150)
        assert [r["model"] for r in sub.rows] == ["bert", "bert"]

    def test_sorted_by(self, table):
        assert [r["model"] for r in table.sorted_by("model").rows][:2] == ["bert", "bert"]


class TestNormalization:
    def test_figure3_style_join(self, table):
        norm = table.with_normalized(value="total_cycles")
        by = {(r["model"], r["scheme"]): r["normalized"] for r in norm.rows}
        assert by[("vgg16", "NP")] == 1.0
        assert by[("vgg16", "BP")] == pytest.approx(1.30)
        assert by[("bert", "BP")] == pytest.approx(1.20)

    def test_config_sweeps_normalize_per_config(self):
        """A design-space sweep must normalize each accelerator config
        against its own NP baseline, not the last one seen."""
        from repro.experiments import Runner, SweepSpec

        spec = SweepSpec(models=("alexnet",), schemes=("np", "bp"),
                         configs=({}, {"dram_bandwidth_gbps": 68.0}))
        norm = Runner().run(spec).with_normalized()
        for row in norm.where(scheme="NP").rows:
            assert row["normalized"] == 1.0, row["config"]
        slowdowns = {row["dram_gbps"]: row["normalized"]
                     for row in norm.where(scheme="BP").rows}
        # each config gets its own baseline: both penalties are real
        # slowdowns, and they differ (a shared baseline would collapse
        # one of them toward the other config's ratio)
        assert all(v > 1.0 for v in slowdowns.values())
        assert slowdowns[34.0] != slowdowns[68.0]

    def test_missing_baseline_yields_none(self):
        t = ResultTable([{"model": "x", "scheme": "BP", "mode": "inference",
                          "batch": 1, "total_cycles": 10}])
        (row,) = t.with_normalized().rows
        assert row["normalized"] is None


class TestEmitters:
    def test_markdown_shape(self, table):
        lines = table.to_markdown().splitlines()
        assert len(lines) == 2 + len(table)
        assert lines[0].startswith("| model |")
        assert all(line.startswith("|") for line in lines)

    def test_csv_round_trips(self, table):
        parsed = list(csv.DictReader(io.StringIO(table.to_csv())))
        assert len(parsed) == len(table)
        assert parsed[0]["model"] == "vgg16"
        assert parsed[1]["total_cycles"] == "130"

    def test_json_round_trips(self, table):
        back = ResultTable.from_json(table.to_json())
        assert back == table

    def test_json_preserves_column_order(self, table):
        payload = json.loads(table.to_json())
        assert payload["columns"] == table.columns
