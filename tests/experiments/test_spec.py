"""SweepSpec: grid expansion, determinism, validation, job identity."""

import pytest

from repro.experiments import Job, SweepSpec


class TestExpansion:
    def test_grid_size(self):
        spec = SweepSpec(models=("vgg16", "bert"), schemes=("np", "bp"),
                         batches=(1, 4), modes=("inference", "training"))
        assert spec.size == 16
        assert len(spec.jobs()) == 16

    def test_deterministic_order_mode_major_scheme_minor(self):
        spec = SweepSpec(models=("vgg16", "bert"), schemes=("np", "bp"),
                         modes=("inference", "training"))
        jobs = spec.jobs()
        keys = [(j.params["training"], j.params["model"], j.params["scheme"])
                for j in jobs]
        assert keys == [
            (False, "vgg16", "np"), (False, "vgg16", "bp"),
            (False, "bert", "np"), (False, "bert", "bp"),
            (True, "vgg16", "np"), (True, "vgg16", "bp"),
            (True, "bert", "np"), (True, "bert", "bp"),
        ]

    def test_repeated_expansion_is_identical(self):
        spec = SweepSpec(models=("vgg16",), schemes=("np", ("bp", {"cache_bytes": 1024})))
        assert spec.jobs() == spec.jobs()

    def test_scheme_params_flow_into_jobs(self):
        spec = SweepSpec(models=("vgg16",), schemes=(("bp", {"cache_bytes": 2048}),))
        (job,) = spec.jobs()
        assert job.params["scheme_params"] == {"cache_bytes": 2048}

    def test_config_overrides_flow_into_jobs(self):
        spec = SweepSpec(models=("vgg16",), schemes=("np",),
                         configs=({"dram_bandwidth_gbps": 68.0},))
        (job,) = spec.jobs()
        assert job.params["config"] == {"dram_bandwidth_gbps": 68.0}


class TestValidation:
    def test_rejects_empty_models(self):
        with pytest.raises(ValueError):
            SweepSpec(models=())

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SweepSpec(models=("vgg16",), modes=("backward",))

    def test_rejects_unknown_scheme(self):
        with pytest.raises(KeyError):
            SweepSpec(models=("vgg16",), schemes=("rot13",))

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            SweepSpec(models=("vgg16",), batches=(0,))


class TestJobIdentity:
    def test_param_order_does_not_change_identity(self):
        a = Job.make("accel_run", model="vgg16", batch=1)
        b = Job.make("accel_run", batch=1, model="vgg16")
        assert a == b
        assert a.params_json == b.params_json

    def test_different_params_differ(self):
        a = Job.make("accel_run", model="vgg16", batch=1)
        b = Job.make("accel_run", model="vgg16", batch=2)
        assert a != b

    def test_params_round_trip(self):
        job = Job.make("accel_run", model="vgg16", scheme_params={"chunk_bytes": 64})
        assert job.params == {"model": "vgg16", "scheme_params": {"chunk_bytes": 64}}
