"""Result cache: content addressing, hit/miss behavior, robustness."""

import json
import os

import pytest

from repro.experiments import Job, ResultCache, code_fingerprint, execute_job

JOB = Job.make("accel_run", model="alexnet", zoo="paper", scheme="guardnn-ci",
               scheme_params={}, batch=1, training=False, config={})


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path))


class TestHitMiss:
    def test_first_lookup_misses(self, cache):
        assert cache.get(JOB) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_put_then_get_round_trips(self, cache):
        rows = execute_job(JOB)
        cache.put(JOB, rows)
        assert cache.get(JOB) == rows
        assert cache.hits == 1

    def test_hit_survives_new_cache_instance(self, cache, tmp_path):
        rows = execute_job(JOB)
        cache.put(JOB, rows)
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(JOB) == rows

    def test_cached_rows_equal_recomputed_rows(self, cache):
        rows = execute_job(JOB)
        cache.put(JOB, rows)
        assert cache.get(JOB) == execute_job(JOB)


class TestContentAddressing:
    def test_key_is_stable(self, cache):
        assert cache.key(JOB) == cache.key(JOB)

    def test_key_depends_on_params(self, cache):
        other = Job.make("accel_run", model="alexnet", zoo="paper", scheme="bp",
                         scheme_params={}, batch=1, training=False, config={})
        assert cache.key(JOB) != cache.key(other)

    def test_key_depends_on_executor(self, cache):
        assert cache.key(JOB) != cache.key(Job(executor="other",
                                               params_json=JOB.params_json))

    def test_key_depends_on_code_fingerprint(self, tmp_path):
        a = ResultCache(str(tmp_path), fingerprint="aaa")
        b = ResultCache(str(tmp_path), fingerprint="bbb")
        assert a.key(JOB) != b.key(JOB)
        a.put(JOB, [{"x": 1}])
        assert b.get(JOB) is None  # a code change invalidates the entry

    def test_fingerprint_tracks_source(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "m.py").write_text("x = 1\n")
        before = code_fingerprint(str(pkg))
        assert before == code_fingerprint(str(pkg))  # memoized and stable
        (pkg / "m.py").write_text("x = 2\n")
        # memo intentionally caches per-process; a fresh walk must differ
        from repro.experiments import cache as cache_mod

        cache_mod._fingerprint_memo.pop(str(pkg))
        assert code_fingerprint(str(pkg)) != before


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put(JOB, execute_job(JOB))
        path = cache._path(cache.key(JOB))
        with open(path, "w") as f:
            f.write("{not json")
        assert cache.get(JOB) is None

    @pytest.mark.parametrize("rows", ["garbage", None, [1, 2], [{"ok": 1}, "no"]])
    def test_parseable_but_malformed_rows_are_a_miss(self, cache, rows):
        path = cache._path(cache.key(JOB))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            json.dump({"rows": rows}, f)
        assert cache.get(JOB) is None
        assert cache.hits == 0

    def test_entry_file_is_debuggable_json(self, cache):
        cache.put(JOB, execute_job(JOB))
        with open(cache._path(cache.key(JOB))) as f:
            payload = json.load(f)
        assert payload["executor"] == "accel_run"
        assert payload["params"]["model"] == "alexnet"
        assert payload["rows"]

    def test_directory_created_lazily(self, tmp_path):
        target = os.path.join(str(tmp_path), "deep", "nested")
        cache = ResultCache(target)
        cache.get(JOB)  # miss, must not create anything
        assert not os.path.exists(target)
        cache.put(JOB, [{"x": 1}])
        assert os.path.exists(target)
