"""Extended zoo: parameterized families match published numbers."""

import pytest

from repro.accel.zoo_ext import (
    EXTENDED_ZOO,
    LLM_GEOMETRIES,
    build_bert_custom,
    build_decoder_lm,
    build_extended,
    build_mobilenet_width,
    build_resnet,
    build_vgg,
    build_vit,
    build_wav2vec2_duration,
    llm_geometry,
)


class TestResNets:
    # published (GMACs, Mparams) for 224x224
    CASES = {18: (1.82, 11.7), 34: (3.67, 21.8), 50: (4.09, 25.5),
             101: (7.8, 44.5), 152: (11.5, 60.2)}

    @pytest.mark.parametrize("depth", sorted(CASES))
    def test_macs_params(self, depth):
        gmacs, mparams = self.CASES[depth]
        model = build_resnet(depth)
        assert model.macs(1) / 1e9 == pytest.approx(gmacs, rel=0.07)
        assert model.weight_elements() / 1e6 == pytest.approx(mparams, rel=0.07)

    def test_unknown_depth(self):
        with pytest.raises(KeyError):
            build_resnet(77)


class TestVggs:
    CASES = {11: (7.6, 132.9), 13: (11.3, 133.0), 16: (15.5, 138.3), 19: (19.6, 143.7)}

    @pytest.mark.parametrize("depth", sorted(CASES))
    def test_macs_params(self, depth):
        gmacs, mparams = self.CASES[depth]
        model = build_vgg(depth)
        assert model.macs(1) / 1e9 == pytest.approx(gmacs, rel=0.07)
        assert model.weight_elements() / 1e6 == pytest.approx(mparams, rel=0.05)


class TestMobileNetWidths:
    def test_monotone_in_width(self):
        macs = [build_mobilenet_width(w).macs(1) for w in (0.25, 0.5, 0.75, 1.0)]
        assert macs == sorted(macs)

    def test_quarter_width_much_smaller(self):
        full = build_mobilenet_width(1.0)
        quarter = build_mobilenet_width(0.25)
        assert quarter.macs(1) < full.macs(1) / 8

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            build_mobilenet_width(2.0)


class TestVits:
    def test_base_matches_primary_zoo(self):
        from repro.accel.models import build_model

        ext = build_vit("base")
        primary = build_model("vit")
        assert ext.macs(1) == primary.macs(1)
        assert ext.weight_elements() == primary.weight_elements()

    def test_large_params(self):
        model = build_vit("large")
        assert model.weight_elements() / 1e6 == pytest.approx(304, rel=0.07)

    def test_patch_divisibility(self):
        with pytest.raises(ValueError):
            build_vit("base", image=225)

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            build_vit("huge-ish")


class TestBertAndWav2vec:
    def test_bert_large_params(self):
        model = build_bert_custom(d_model=1024, depth=24, heads=16)
        # BERT-Large encoder ~304M + embeddings ~31M
        assert model.weight_elements() / 1e6 == pytest.approx(335, rel=0.1)

    def test_bert_seq_scales_attention_quadratically(self):
        short = build_bert_custom(seq=128)
        long = build_bert_custom(seq=512)
        # attention scores scale ~16x; projections ~4x; total in between
        assert 4 < long.macs(1) / short.macs(1) < 16

    def test_wav2vec_duration_scales_compute(self):
        one = build_wav2vec2_duration(1.0)
        ten = build_wav2vec2_duration(10.0)
        assert ten.macs(1) > 5 * one.macs(1)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            build_wav2vec2_duration(0)


class TestDecoderLms:
    # published parameter counts (embedding + blocks + head, weight tying
    # ignored as in the repo's other transformer builders)
    def test_gpt2_xl_param_scale(self):
        model = build_decoder_lm("gpt2-xl")
        # 1.5B-class: transformer blocks alone are ~1.4B params
        assert 1.3e9 < model.weight_elements() < 2.1e9

    def test_llama_7b_param_scale(self):
        # the shared encoder builder uses a 2-matrix MLP (LLaMA's gated
        # third matrix is not modeled), so the count lands ~20% under
        # the published 6.7B — still unambiguously 7B-class
        model = build_decoder_lm("llama-7b")
        assert 4.8e9 < model.weight_elements() < 8.5e9

    def test_seq_bounds_enforced(self):
        with pytest.raises(ValueError):
            build_decoder_lm("gpt2-xl", seq=4096)

    def test_unknown_geometry(self):
        with pytest.raises(KeyError):
            llm_geometry("gpt5")

    def test_geometries_registered_in_zoo(self):
        assert "gpt2-xl" in EXTENDED_ZOO and "llama-7b" in EXTENDED_ZOO
        assert set(LLM_GEOMETRIES) >= {"gpt2", "gpt2-xl", "llama-7b"}


class TestRegistry:
    def test_all_entries_build(self):
        for name in EXTENDED_ZOO:
            model = build_extended(name)
            assert model.macs(1) > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_extended("lenet-5")

    def test_protection_shape_holds_across_extended_zoo(self):
        """The paper's headline ordering survives the larger class of
        models: NP <= GuardNN_C <= GuardNN_CI <= BP everywhere."""
        from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
        from repro.protection.guardnn import GuardNNProtection
        from repro.protection.mee import BaselineMEE
        from repro.protection.none import NoProtection

        accel = AcceleratorModel(TPU_V1_CONFIG)
        for name in ("resnet18", "vgg19", "mobilenet-0.25x", "vit-small"):
            model = build_extended(name)
            np_t = accel.run(model, NoProtection()).total_cycles
            c_t = accel.run(model, GuardNNProtection(False)).total_cycles
            ci_t = accel.run(model, GuardNNProtection(True)).total_cycles
            bp_t = accel.run(model, BaselineMEE()).total_cycles
            assert np_t <= c_t <= ci_t <= bp_t, name
