"""Layer shape/MAC arithmetic."""

import pytest

from repro.accel.layers import (
    Conv1DLayer,
    ConvLayer,
    DenseLayer,
    DepthwiseConvLayer,
    ElementwiseLayer,
    EmbeddingLayer,
    GemmShape,
    MatmulLayer,
    PoolLayer,
)


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_operand_elements(self):
        assert GemmShape(2, 3, 4).operand_elements() == (6, 12, 8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)


class TestConvLayer:
    def test_output_spatial_dims(self):
        conv = ConvLayer("c", c_in=3, c_out=96, in_h=224, in_w=224, kernel=11,
                         stride=4, padding=2)
        assert conv.out_h == 55 and conv.out_w == 55

    def test_im2col_gemm(self):
        conv = ConvLayer("c", c_in=64, c_out=128, in_h=56, in_w=56, kernel=3,
                         stride=1, padding=1)
        (g,) = conv.gemms()
        assert g.m == 56 * 56
        assert g.k == 64 * 9
        assert g.n == 128

    def test_macs_match_closed_form(self):
        conv = ConvLayer("c", c_in=64, c_out=128, in_h=56, in_w=56, kernel=3,
                         stride=1, padding=1)
        assert conv.macs() == 56 * 56 * 64 * 9 * 128

    def test_grouped_conv_splits(self):
        conv = ConvLayer("c", c_in=96, c_out=256, in_h=27, in_w=27, kernel=5,
                         padding=2, groups=2)
        gemms = conv.gemms()
        assert len(gemms) == 2
        assert gemms[0].k == 48 * 25
        assert gemms[0].n == 128
        assert conv.weight_elements() == 48 * 256 * 25

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            ConvLayer("c", c_in=10, c_out=8, in_h=8, in_w=8, kernel=3, groups=3)

    def test_batch_scales_m(self):
        conv = ConvLayer("c", c_in=3, c_out=8, in_h=8, in_w=8, kernel=3, padding=1)
        assert conv.gemms(4)[0].m == 4 * conv.gemms(1)[0].m


class TestConv1D:
    def test_wav2vec_first_layer(self):
        conv = Conv1DLayer("f", c_in=1, c_out=512, length=16000, kernel=10, stride=5)
        assert conv.out_length == (16000 - 10) // 5 + 1
        (g,) = conv.gemms()
        assert g.k == 10 and g.n == 512

    def test_weights(self):
        conv = Conv1DLayer("f", c_in=512, c_out=512, length=100, kernel=3, stride=2)
        assert conv.weight_elements() == 512 * 512 * 3


class TestDepthwise:
    def test_one_gemm_per_channel(self):
        layer = DepthwiseConvLayer("dw", channels=32, in_h=112, in_w=112)
        gemms = layer.gemms()
        assert len(gemms) == 32
        assert gemms[0].n == 1 and gemms[0].k == 9

    def test_macs(self):
        layer = DepthwiseConvLayer("dw", channels=32, in_h=112, in_w=112)
        assert layer.macs() == 32 * 112 * 112 * 9


class TestDense:
    def test_gemm(self):
        layer = DenseLayer("fc", in_features=2048, out_features=1000)
        (g,) = layer.gemms(batch=8)
        assert (g.m, g.k, g.n) == (8, 2048, 1000)

    def test_seq_multiplier(self):
        layer = DenseLayer("proj", in_features=768, out_features=768, seq=197)
        assert layer.gemms()[0].m == 197


class TestOthers:
    def test_matmul_no_weights(self):
        layer = MatmulLayer("scores", m=197, k=64, n=197, count=12)
        assert layer.weight_elements() == 0
        assert len(layer.gemms()) == 12
        assert not layer.has_weights

    def test_pool_moves_data_no_macs(self):
        layer = PoolLayer("p", channels=64, in_h=112, in_w=112)
        assert layer.macs() == 0
        assert layer.output_elements() == 64 * 56 * 56

    def test_embedding_traffic_only(self):
        layer = EmbeddingLayer("emb", rows=1000, dim=128, lookups_per_sample=4)
        assert layer.macs() == 0
        assert layer.output_elements(2) == 2 * 4 * 128
        assert layer.weight_elements() == 1000 * 128

    def test_elementwise_operands(self):
        layer = ElementwiseLayer("add", elements=100, operands=2)
        assert layer.input_elements() == 200
        assert layer.output_elements() == 100
