"""Model zoo: layer tables must match the published architectures."""

import pytest

from repro.accel.models import ALIASES, MODEL_ZOO, build_model, list_models


class TestZoo:
    def test_all_nine_networks_present(self):
        assert set(list_models()) == {
            "alexnet", "vgg16", "googlenet", "resnet50", "mobilenet",
            "vit", "bert", "dlrm", "wav2vec2",
        }

    def test_paper_aliases(self):
        assert build_model("vgg").name == "vgg16"
        assert build_model("resnet").name == "resnet50"
        assert build_model("wave2vec2").name == "wav2vec2"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("lenet")

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_layer_names_unique(self, name):
        model = build_model(name)
        names = [layer.name for layer in model.layers]
        assert len(names) == len(set(names))


class TestPublishedNumbers:
    """MAC and parameter counts against the original papers (±5%)."""

    CASES = {
        # name: (GMACs batch-1, Mparams)
        "alexnet": (1.13, 62.4),
        "vgg16": (15.5, 138.3),
        "googlenet": (1.58, 7.0),
        "resnet50": (4.09, 25.5),
        "mobilenet": (0.57, 4.2),
        "vit": (17.6, 86.3),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_macs_and_params(self, name):
        gmacs, mparams = self.CASES[name]
        model = build_model(name)
        assert model.macs(1) / 1e9 == pytest.approx(gmacs, rel=0.05)
        assert model.weight_elements() / 1e6 == pytest.approx(mparams, rel=0.05)

    def test_bert_scale(self):
        model = build_model("bert")
        # ~22.5 GMACs per 512-token sequence in the encoder stack alone
        assert model.macs(1) / 1e9 > 40  # with MLM head
        assert model.weight_elements() / 1e6 > 100

    def test_dlrm_embedding_dominated(self):
        model = build_model("dlrm")
        emb = sum(l.weight_elements() for l in model.layers if l.name.startswith("emb"))
        assert emb / model.weight_elements() > 0.99
        assert model.macs(1) < 10e6  # MLPs only

    def test_wav2vec2_transformer_dominates_compute(self):
        model = build_model("wav2vec2")
        enc = sum(l.macs(1) for l in model.layers if l.name.startswith("enc"))
        assert enc / model.macs(1) > 0.3


class TestStructure:
    def test_vgg_conv_counts(self):
        model = build_model("vgg16")
        convs = [l for l in model.layers if l.name.endswith(tuple(f"conv{i}" for i in range(1, 4)))]
        assert len(convs) == 13

    def test_resnet_block_structure(self):
        model = build_model("resnet50")
        projections = [l for l in model.layers if l.name.endswith("_proj")]
        assert len(projections) == 4  # one per stage

    def test_mobilenet_alternates_dw_pw(self):
        model = build_model("mobilenet")
        dw = [l for l in model.layers if l.name.startswith("dw")]
        pw = [l for l in model.layers if l.name.startswith("pw")]
        assert len(dw) == len(pw) == 13

    def test_compute_layers_excludes_pools(self):
        model = build_model("alexnet")
        names = [l.name for l in model.compute_layers()]
        assert all(not n.startswith("pool") for n in names)

    def test_model_iteration(self):
        model = build_model("alexnet")
        assert len(list(model)) == len(model)
