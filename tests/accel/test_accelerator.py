"""The combined accelerator performance model."""

import pytest

from repro.accel.accelerator import AcceleratorConfig, AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.protection.guardnn import GuardNNProtection
from repro.protection.mee import BaselineMEE
from repro.protection.none import NoProtection


@pytest.fixture(scope="module")
def alexnet():
    return build_model("alexnet")


@pytest.fixture(scope="module")
def accel():
    return AcceleratorModel(TPU_V1_CONFIG)


class TestConfig:
    def test_tpu_config_matches_paper(self):
        assert TPU_V1_CONFIG.num_pes == 64 * 1024
        assert TPU_V1_CONFIG.sram_bytes == 24 * 1024 * 1024
        assert TPU_V1_CONFIG.freq_mhz == 700.0

    def test_dram_bytes_per_cycle(self):
        cfg = AcceleratorConfig("x", 16, 16, 1 << 20, 1000.0, 16.0)
        assert cfg.dram_bytes_per_cycle == pytest.approx(16.0)


class TestRuns:
    def test_np_has_zero_metadata(self, accel, alexnet):
        result = accel.run(alexnet, NoProtection())
        assert result.total_metadata_bytes == 0
        assert result.traffic_increase == 0.0

    def test_one_timing_per_layer(self, accel, alexnet):
        result = accel.run(alexnet, NoProtection())
        assert len(result.layers) == len(alexnet.layers)

    def test_layer_total_is_max_of_parts(self, accel, alexnet):
        result = accel.run(alexnet, NoProtection())
        for lt in result.layers:
            assert lt.total_cycles >= max(lt.compute_cycles, lt.memory_cycles)

    def test_training_slower_than_inference(self, accel, alexnet):
        inf = accel.run(alexnet, NoProtection(), training=False)
        train = accel.run(alexnet, NoProtection(), training=True)
        assert train.total_cycles > 2 * inf.total_cycles

    def test_normalized_to_self_is_one(self, accel, alexnet):
        result = accel.run(alexnet, NoProtection())
        assert result.normalized_to(result) == 1.0

    def test_throughput_positive(self, accel, alexnet):
        result = accel.run(alexnet, NoProtection())
        assert result.throughput_samples_per_s() > 0

    def test_batch_scales_data(self, accel, alexnet):
        b1 = accel.run(alexnet, NoProtection(), batch=1)
        b4 = accel.run(alexnet, NoProtection(), batch=4)
        assert b4.total_data_bytes > b1.total_data_bytes
        # batching amortizes weight reads: less than linear growth
        assert b4.total_data_bytes < 4 * b1.total_data_bytes


class TestProtectionOrdering:
    """The paper's headline ordering must hold for every network."""

    @pytest.mark.parametrize("name", ["alexnet", "mobilenet", "vit"])
    def test_np_le_c_le_ci_le_bp(self, accel, name):
        model = build_model(name)
        np_t = accel.run(model, NoProtection()).total_cycles
        c_t = accel.run(model, GuardNNProtection(integrity=False)).total_cycles
        ci_t = accel.run(model, GuardNNProtection(integrity=True)).total_cycles
        bp_t = accel.run(model, BaselineMEE()).total_cycles
        assert np_t <= c_t <= ci_t <= bp_t

    def test_guardnn_overhead_small(self, accel, alexnet):
        base = accel.run(alexnet, NoProtection())
        ci = accel.run(alexnet, GuardNNProtection(integrity=True))
        assert ci.normalized_to(base) < 1.05  # paper: ~1.01

    def test_bp_overhead_substantial(self, accel, alexnet):
        base = accel.run(alexnet, NoProtection())
        bp = accel.run(alexnet, BaselineMEE())
        assert bp.normalized_to(base) > 1.10  # paper: ~1.25x
