"""Systolic-array timing model."""

import pytest

from repro.accel.layers import GemmShape
from repro.accel.systolic import Dataflow, SystolicArray


class TestBasics:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 16)

    def test_num_pes(self):
        assert SystolicArray(256, 256).num_pes == 65536

    def test_utilization_bounded(self):
        array = SystolicArray(32, 32)
        for gemm in (GemmShape(1, 1, 1), GemmShape(1000, 1000, 1000), GemmShape(7, 3, 5)):
            for df in Dataflow:
                t = array.gemm_cycles(gemm, df)
                assert 0.0 < t.utilization <= 1.0

    def test_cycles_at_least_ideal(self):
        array = SystolicArray(16, 16)
        gemm = GemmShape(512, 512, 512)
        ideal = gemm.macs / array.num_pes
        for df in Dataflow:
            assert array.gemm_cycles(gemm, df).cycles >= ideal


class TestWeightStationary:
    def test_perfectly_mapped_gemm_near_full_util(self):
        array = SystolicArray(32, 32)
        gemm = GemmShape(4096, 32, 32)  # one fold, long stream
        t = array.gemm_cycles(gemm, Dataflow.WEIGHT_STATIONARY)
        assert t.folds == 1
        assert t.utilization > 0.95

    def test_fold_count(self):
        array = SystolicArray(32, 32)
        gemm = GemmShape(1024, 96, 64)
        t = array.gemm_cycles(gemm, Dataflow.WEIGHT_STATIONARY)
        assert t.folds == 3 * 2

    def test_matrix_vector_mode_for_skinny_m(self):
        """Batch-1 FC: flattened mapping beats naive folding by orders
        of magnitude (this is what lets CHaiDNN run AlexNet FCs)."""
        array = SystolicArray(32, 32)
        fc = GemmShape(1, 9216, 4096)
        t = array.gemm_cycles(fc, Dataflow.WEIGHT_STATIONARY)
        ideal = fc.macs / array.num_pes
        assert t.cycles < 2 * ideal

    def test_wide_m_uses_fold_mode(self):
        array = SystolicArray(32, 32)
        gemm = GemmShape(64, 64, 64)
        t = array.gemm_cycles(gemm, Dataflow.WEIGHT_STATIONARY)
        assert t.folds == 4

    def test_underfilled_array_wastes_cycles(self):
        """K smaller than rows -> low utilization (VGG's first conv on a
        256x256 TPU is the canonical example)."""
        array = SystolicArray(256, 256)
        gemm = GemmShape(50176, 27, 64)
        t = array.gemm_cycles(gemm, Dataflow.WEIGHT_STATIONARY)
        assert t.utilization < 0.05


class TestOtherDataflows:
    def test_output_stationary_folds(self):
        array = SystolicArray(16, 16)
        gemm = GemmShape(64, 1000, 32)
        t = array.gemm_cycles(gemm, Dataflow.OUTPUT_STATIONARY)
        assert t.folds == 4 * 2
        assert t.cycles == 8 * 1000 + 30

    def test_input_stationary_folds(self):
        array = SystolicArray(16, 16)
        gemm = GemmShape(64, 32, 1000)
        t = array.gemm_cycles(gemm, Dataflow.INPUT_STATIONARY)
        assert t.folds == 2 * 4
        assert t.cycles == 8 * 1000 + 30


class TestGemmList:
    def test_groups_identical_shapes(self):
        array = SystolicArray(8, 8)
        gemms = [GemmShape(100, 9, 1)] * 50
        t = array.gemm_list_cycles(gemms)
        single = array.gemm_cycles(GemmShape(100, 9, 1))
        assert t.cycles == 50 * single.cycles

    def test_empty_list(self):
        t = SystolicArray(8, 8).gemm_list_cycles([])
        assert t.cycles == 0 and t.utilization == 0.0

    def test_mixed_shapes_sum(self):
        array = SystolicArray(8, 8)
        a, b = GemmShape(64, 8, 8), GemmShape(128, 16, 16)
        combined = array.gemm_list_cycles([a, b]).cycles
        assert combined == array.gemm_cycles(a).cycles + array.gemm_cycles(b).cycles
