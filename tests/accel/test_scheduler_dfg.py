"""Tiling scheduler traffic and DFG construction."""

import pytest

from repro.accel.dfg import build_inference_dfg, build_training_dfg
from repro.accel.layers import ConvLayer, DenseLayer, PoolLayer
from repro.accel.models import build_model
from repro.accel.scheduler import TilingScheduler


class TestSchedulerTraffic:
    def test_fits_on_chip_moves_once(self):
        scheduler = TilingScheduler(sram_bytes=1 << 24)
        layer = DenseLayer("fc", in_features=256, out_features=128)
        t = scheduler.layer_traffic(layer)
        assert t.weight_reads == 256 * 128
        assert t.input_reads == 256
        assert t.output_writes == 128
        assert t.input_passes == 1

    def test_oversized_gemm_rereads(self):
        scheduler = TilingScheduler(sram_bytes=1 << 14)  # 16 KB
        layer = DenseLayer("fc", in_features=4096, out_features=4096, seq=64)
        t = scheduler.layer_traffic(layer)
        assert t.weight_reads > t.weight_size or t.input_reads > t.input_size
        assert t.output_writes == t.output_size  # outputs written once

    def test_outputs_always_written_once(self):
        """Section II-D's premise: output features go to DRAM once."""
        scheduler = TilingScheduler(sram_bytes=1 << 12)
        for layer in build_model("vgg16").layers:
            t = scheduler.layer_traffic(layer)
            assert t.output_writes == t.output_size

    def test_pool_streams_through(self):
        scheduler = TilingScheduler(sram_bytes=1 << 20)
        layer = PoolLayer("p", channels=64, in_h=56, in_w=56)
        t = scheduler.layer_traffic(layer)
        assert t.input_reads == t.input_size
        assert t.weight_reads == 0

    def test_bytes_per_element_scales(self):
        layer = DenseLayer("fc", in_features=128, out_features=64)
        t1 = TilingScheduler(1 << 24, bytes_per_element=1).layer_traffic(layer)
        t2 = TilingScheduler(1 << 24, bytes_per_element=2).layer_traffic(layer)
        assert t2.weight_reads == 2 * t1.weight_reads

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TilingScheduler(0)
        with pytest.raises(ValueError):
            TilingScheduler(1024, bytes_per_element=0)

    def test_network_traffic_length(self):
        model = build_model("alexnet")
        scheduler = TilingScheduler(1 << 22)
        assert len(scheduler.network_traffic(model.layers)) == len(model.layers)


class TestInferenceDfg:
    def test_one_node_per_layer(self):
        model = build_model("alexnet")
        dfg = build_inference_dfg(model)
        assert len(dfg.nodes) == len(model.layers)
        assert all(n.op == "forward" for n in dfg.nodes)

    def test_features_chain(self):
        model = build_model("alexnet")
        dfg = build_inference_dfg(model)
        for prev, node in zip(dfg.nodes, dfg.nodes[1:]):
            assert prev.writes[0] in node.reads

    def test_regions_do_not_overlap(self):
        model = build_model("googlenet")
        dfg = build_inference_dfg(model)
        dfg.validate_no_overlap()

    def test_weight_regions_per_weighted_layer(self):
        model = build_model("vgg16")
        dfg = build_inference_dfg(model)
        weighted = sum(1 for l in model.layers if l.has_weights)
        assert len(dfg.weight_regions()) == weighted

    def test_regions_aligned(self):
        dfg = build_inference_dfg(build_model("alexnet"))
        assert all(r.base % 512 == 0 for r in dfg.regions.values())


class TestTrainingDfg:
    def test_contains_backward_ops(self):
        model = build_model("alexnet")
        dfg = build_training_dfg(model)
        ops = {n.op for n in dfg.nodes}
        assert ops == {"forward", "dgrad", "wgrad", "update"}

    def test_wgrad_and_update_only_for_weighted(self):
        model = build_model("alexnet")
        dfg = build_training_dfg(model)
        weighted = sum(1 for l in model.layers if l.has_weights)
        assert sum(1 for n in dfg.nodes if n.op == "wgrad") == weighted
        assert sum(1 for n in dfg.nodes if n.op == "update") == weighted

    def test_gradients_live_in_distinct_regions(self):
        """Section II-D2: "the gradients and the features are stored in
        different memory locations"."""
        model = build_model("alexnet")
        dfg = build_training_dfg(model)
        dfg.validate_no_overlap()
        grads = [r for r in dfg.regions.values() if r.kind == "gradient"]
        feats = [r for r in dfg.regions.values() if r.kind == "feature"]
        assert grads and feats
        for g in grads:
            assert all(not g.overlaps(f) for f in feats)

    def test_backward_reverses_layer_order(self):
        model = build_model("alexnet")
        dfg = build_training_dfg(model)
        dgrad_indices = [n.layer_index for n in dfg.nodes if n.op == "dgrad"]
        assert dgrad_indices == sorted(dgrad_indices, reverse=True)

    def test_training_flag(self):
        model = build_model("alexnet")
        assert build_training_dfg(model).training
        assert not build_inference_dfg(model).training
