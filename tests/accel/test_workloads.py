"""Workload generators."""

import numpy as np
import pytest

from repro.core.host import MlpSpec
from repro.mem.trace import RequestKind
from repro.workloads.generators import (
    random_mlp_spec,
    random_trace,
    streaming_trace,
    strided_trace,
    tensor_stream_trace,
)


class TestStreaming:
    def test_request_count(self):
        trace = streaming_trace(64 * 100)
        assert len(trace) == 100

    def test_write_fraction(self):
        trace = streaming_trace(64 * 1000, write_fraction=0.25)
        writes = sum(1 for r in trace if r.is_write)
        assert writes == pytest.approx(250, abs=1)

    def test_pure_reads(self):
        trace = streaming_trace(64 * 100, write_fraction=0.0)
        assert not any(r.is_write for r in trace)

    def test_addresses_sequential(self):
        trace = streaming_trace(64 * 10, base=4096)
        assert [r.address for r in trace] == [4096 + i * 64 for i in range(10)]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            streaming_trace(1024, write_fraction=2.0)


class TestRandomAndStrided:
    def test_random_within_span(self):
        rng = np.random.default_rng(0)
        trace = random_trace(500, 1 << 20, rng)
        assert all(0 <= r.address < (1 << 20) for r in trace)
        assert all(r.address % 64 == 0 for r in trace)

    def test_strided_spacing(self):
        trace = strided_trace(10, stride=4096, base=64)
        assert [r.address for r in trace] == [64 + i * 4096 for i in range(10)]
        assert not any(r.is_write for r in trace)


class TestTensorStream:
    def test_last_tensor_written(self):
        trace = tensor_stream_trace([128, 256, 64])
        writes = [r for r in trace if r.is_write]
        assert len(writes) == 1
        assert writes[0].address == 128 + 256

    def test_all_data_kind(self):
        trace = tensor_stream_trace([128, 64])
        assert all(r.kind is RequestKind.DATA for r in trace)

    def test_partial_final_chunk(self):
        trace = tensor_stream_trace([100])
        assert sum(r.size for r in trace) == 100


class TestRandomMlp:
    def test_shapes_chain(self):
        rng = np.random.default_rng(1)
        spec = random_mlp_spec([64, 32, 16, 8], rng)
        assert isinstance(spec, MlpSpec)
        assert [w.shape for w in spec.weights] == [(64, 32), (32, 16), (16, 8)]

    def test_values_bounded(self):
        rng = np.random.default_rng(1)
        spec = random_mlp_spec([16, 8], rng)
        assert spec.weights[0].min() >= -20 and spec.weights[0].max() < 20

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            random_mlp_spec([16], np.random.default_rng(0))
