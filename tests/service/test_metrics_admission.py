"""Unit tests for the service's capacity model and observability
primitives: the streaming latency histogram, the counter registry, and
the admission controller's bounded front door."""

import pytest

from repro.service.admission import AdmissionController
from repro.service.metrics import COUNTERS, ServiceMetrics, StreamingHistogram


class TestStreamingHistogram:
    def test_empty_reports_zero(self):
        h = StreamingHistogram()
        assert h.count == 0
        assert h.percentile(0.5) == 0.0
        assert h.mean == 0.0

    def test_percentile_error_bounded_by_growth(self):
        h = StreamingHistogram(growth=1.08)
        samples = [0.001, 0.002, 0.005, 0.010, 0.050, 0.100, 0.500, 1.0]
        for s in samples:
            h.observe(s)
        # the reported quantile is the bucket upper bound: never below
        # the true sample, never more than one growth factor above
        for q, true in ((0.5, sorted(samples)[3]), (1.0, max(samples))):
            reported = h.percentile(q)
            assert true <= reported <= true * h.growth * 1.001

    def test_max_clamps_top_bucket(self):
        h = StreamingHistogram()
        h.observe(0.2)
        assert h.percentile(0.99) <= h.max == 0.2

    def test_floor_bucket_catches_tiny_values(self):
        h = StreamingHistogram(floor=1e-4)
        h.observe(1e-9)
        assert h.percentile(0.5) <= 1e-4

    def test_snapshot_schema(self):
        h = StreamingHistogram()
        h.observe(0.5)
        snap = h.snapshot()
        assert set(snap) == {"count", "mean_s", "p50_s", "p90_s",
                             "p99_s", "max_s"}
        assert snap["count"] == 1

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            StreamingHistogram(floor=0)
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)
        with pytest.raises(ValueError):
            StreamingHistogram(buckets=1)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            StreamingHistogram().percentile(1.5)


class TestServiceMetrics:
    def test_counters_start_at_zero_with_full_schema(self):
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot()
        assert set(snapshot["counters"]) == set(COUNTERS)
        assert all(v == 0 for v in snapshot["counters"].values())

    def test_incr_and_get(self):
        metrics = ServiceMetrics()
        metrics.incr("admitted_total")
        metrics.incr("rows_streamed_total", 40)
        assert metrics.get("admitted_total") == 1
        assert metrics.get("rows_streamed_total") == 40

    def test_expected_flight_seconds_defaults_then_tracks(self):
        metrics = ServiceMetrics()
        assert metrics.expected_flight_seconds == 1.0
        metrics.observe_flight(4.0)
        assert metrics.expected_flight_seconds == 4.0
        metrics.observe_flight(2.0)  # EWMA moves toward recent flights
        assert 2.0 < metrics.expected_flight_seconds < 4.0

    def test_coalescing_factor(self):
        metrics = ServiceMetrics()
        assert metrics.snapshot()["coalescing_factor"] == 0.0
        metrics.incr("admitted_total", 2)
        metrics.incr("coalesced_total", 2)
        metrics.incr("executions_total", 2)
        assert metrics.snapshot()["coalescing_factor"] == 2.0


class TestAdmissionController:
    def test_admits_until_queue_full(self):
        admission = AdmissionController(max_running=1, max_queued=2)
        # first flight occupies the runner slot
        assert admission.try_admit().admitted
        admission.on_start()
        # two may wait; the third is shed
        assert admission.try_admit().admitted
        assert admission.try_admit().admitted
        decision = admission.try_admit()
        assert not decision.admitted
        assert decision.retry_after >= 1
        assert (decision.queued, decision.running) == (2, 1)

    def test_zero_queue_rejects_while_running(self):
        admission = AdmissionController(max_running=1, max_queued=0)
        assert admission.try_admit().admitted
        admission.on_start()
        assert not admission.try_admit().admitted
        admission.on_finish()
        assert admission.try_admit().admitted

    def test_retry_after_scales_with_backlog_and_latency(self):
        admission = AdmissionController(max_running=1, max_queued=0)
        admission.try_admit()
        admission.on_start()
        short = admission.try_admit(expected_flight_seconds=1.0).retry_after
        long = admission.try_admit(expected_flight_seconds=30.0).retry_after
        assert long >= short
        assert long >= 30

    def test_abandon_releases_queue_slot(self):
        admission = AdmissionController(max_running=1, max_queued=1)
        admission.try_admit()
        admission.on_start()
        admission.try_admit()          # fills the queue
        assert not admission.try_admit().admitted
        admission.on_abandon()         # the queued flight's client left
        assert admission.try_admit().admitted

    def test_gauges_track_lifecycle(self):
        admission = AdmissionController(max_running=2, max_queued=4)
        admission.try_admit()
        assert admission.gauges() == {"running": 0, "queued": 1,
                                      "max_running": 2, "max_queued": 4}
        admission.on_start()
        assert admission.gauges()["running"] == 1
        assert admission.gauges()["queued"] == 0
        admission.on_finish()
        assert admission.gauges()["running"] == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            AdmissionController(max_running=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queued=-1)
