"""Client-side rejection backoff: 429/503 retries are exponential and
jittered around the server's Retry-After hint — a shed fleet must not
wake in lockstep (thundering herd) — and the retry budget is honored.

These tests drive ``ServiceClient.run`` against a stub ``submit`` (the
rejection path needs no real server) with injected rng/sleep, so the
backoff schedule itself is asserted, not just "it eventually worked".
"""

import random

import pytest

from repro.service.client import ServiceClient, ServiceRejected, retry_delay


class TestRetryDelay:
    def test_exponential_in_attempt(self):
        rng = random.Random(0)
        # jitter off by pinning rng: compare expectations via bounds
        for attempt in range(5):
            delay = retry_delay(1.0, attempt, rng)
            assert 0.5 * 2 ** attempt <= delay <= 1.5 * 2 ** attempt

    def test_jitter_spreads_a_fleet(self):
        """Distinct clients sleeping on the same hint must not collide:
        with jitter the spread across a fleet is wide, never a point."""
        delays = {retry_delay(2.0, 0, random.Random(seed))
                  for seed in range(64)}
        assert len(delays) == 64
        assert max(delays) - min(delays) > 0.5

    def test_respects_cap_and_floor(self):
        assert retry_delay(1000.0, 10, random.Random(1), cap=60.0) <= 90.0
        assert retry_delay(0.0, 0, random.Random(1)) >= 0.025  # 0.05 * 0.5

    def test_module_rng_default_works(self):
        assert retry_delay(1.0, 0) > 0


class _RejectingClient(ServiceClient):
    """Rejects the first N submissions with 429/503, then succeeds."""

    def __init__(self, rejections, status=429):
        super().__init__()
        self.rejections = rejections
        self.status = status
        self.attempts = 0

    def submit(self, job):
        self.attempts += 1
        if self.attempts <= self.rejections:
            raise ServiceRejected(2, {"error": "saturated"},
                                  status=self.status)
        return iter([{"event": "result", "table": []}])


class TestRunRetries:
    def test_default_fails_fast(self):
        client = _RejectingClient(rejections=1)
        with pytest.raises(ServiceRejected):
            client.run({"kind": "sweep"})
        assert client.attempts == 1

    def test_retries_until_admitted_with_backoff(self):
        client = _RejectingClient(rejections=3)
        slept = []
        result = client.run({"kind": "sweep"}, retries=5,
                            rng=random.Random(42), sleep=slept.append)
        assert result["event"] == "result"
        assert client.attempts == 4
        assert len(slept) == 3
        # exponential shape: each attempt's window doubles
        for attempt, delay in enumerate(slept):
            assert 0.5 * 2 * 2 ** attempt <= delay <= 1.5 * 2 * 2 ** attempt

    def test_budget_exhausted_raises_last_rejection(self):
        client = _RejectingClient(rejections=10, status=503)
        slept = []
        with pytest.raises(ServiceRejected) as rejected:
            client.run({"kind": "sweep"}, retries=2,
                       rng=random.Random(0), sleep=slept.append)
        assert client.attempts == 3
        assert len(slept) == 2
        assert rejected.value.status == 503

    def test_503_draining_message_names_status_and_reason(self):
        error = ServiceRejected(4, {"error": "draining"}, status=503)
        assert "503" in str(error)
        assert "draining" in str(error)
        assert error.retry_after == 4
