"""``repro serve --distributed``: flights fanned through an embedded
coordinator, with the local pool as the zero-worker floor and a
journal per flight under the checkpoint directory.

Four contracts:

* **Local fallback** — with no worker connected a distributed service
  still answers sweep and pipeline flights, bit-identical to the
  direct APIs, and the spent per-flight journals are discarded.
* **Real worker** — a ``Worker`` parked against the fixed distributed
  port (reconnect budget disabled) joins the flight's coordinator and
  serves its units; the streamed result is unchanged.
* **Journal resume** — a journal left in the checkpoint directory by a
  daemon that died mid-flight is rebuilt into a flight at startup from
  the request riding in its header, recomputed without a client
  attached, and its rows land in the shared caches.
* **Quarantine** — an unreadable journal is set aside as ``.corrupt``
  at startup (counted) instead of wedging the daemon.
"""

import asyncio
import os
import socket
import threading
import time

import pytest

import repro.experiments.runner as runner_module
from repro import perf
from repro.distributed import Journal, Worker, WorkerConfig
from repro.distributed.protocol import unit_key
from repro.experiments import Runner, SweepSpec
from repro.experiments.cache import code_fingerprint
from repro.experiments.executors import pipeline_rows
from repro.service import ReproService, ServeConfig, ServiceClient
from repro.service.protocol import parse_job_request

SWEEP_SPEC = {"models": ["alexnet", "mobilenet"], "schemes": ["np", "bp"]}
SWEEP_JOB = {"kind": "sweep", "spec": SWEEP_SPEC}
PIPELINE_JOB = {"kind": "pipeline", "workload": "streaming",
                "schemes": ["np"], "chunk_requests": 1 << 12,
                "params": {"nbytes": 1 << 20}}


@pytest.fixture
def fresh_memory_cache():
    previous = perf.fast_enabled()
    perf.set_fast(True)
    runner_module._MEMORY_CACHE.clear()
    yield runner_module._MEMORY_CACHE
    runner_module._MEMORY_CACHE.clear()
    perf.set_fast(previous)
    perf.clear_caches()


def start_service(**overrides):
    config = ServeConfig(port=0, workers=2, cache=False,
                         distributed=True, **overrides)
    service = ReproService(config)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready)), daemon=True)
    thread.start()
    assert ready.wait(15), "service failed to come up"
    client = ServiceClient("127.0.0.1", service.port, timeout=120)
    return service, client, thread


def stop_service(service, thread):
    service.request_shutdown()
    thread.join(15)


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached")


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def direct_pipeline_rows():
    rows = pipeline_rows({
        "workload": PIPELINE_JOB["workload"],
        "schemes": PIPELINE_JOB["schemes"],
        "chunk_requests": PIPELINE_JOB["chunk_requests"],
        **PIPELINE_JOB["params"]})
    runner_module._MEMORY_CACHE.clear()
    return rows


def test_zero_workers_falls_back_to_local_pool(fresh_memory_cache, tmp_path):
    service, client, thread = start_service(
        dist_port=0, checkpoint_dir=str(tmp_path))
    try:
        events = []
        streamed = client.run(SWEEP_JOB, on_event=events.append)
        direct = Runner(workers=2).run(
            SweepSpec(models=tuple(SWEEP_SPEC["models"]),
                      schemes=tuple(SWEEP_SPEC["schemes"])))
        assert streamed["table"]["rows"] == direct.rows

        # the flight announced its coordinator before executing
        announce = [e for e in events if e["event"] == "distributed"]
        assert len(announce) == 1
        assert announce[0]["epoch"] == 0
        assert announce[0]["replayed_units"] == 0

        runner_module._MEMORY_CACHE.clear()
        result = client.run(PIPELINE_JOB)
        assert result["rows"] == direct_pipeline_rows()

        assert service.metrics.get("distributed_flights_total") == 2
        # both flights delivered: their spent journals are gone
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".journal")]
    finally:
        stop_service(service, thread)


def test_parked_worker_serves_the_flight(fresh_memory_cache, tmp_path):
    port = free_port()
    outcome = {}

    def work():
        # budget 0: park against the (not yet listening) distributed
        # port forever — the fleet posture for a serve daemon
        worker = Worker(WorkerConfig(url=f"http://127.0.0.1:{port}",
                                     name="parked", workers=1, log=False,
                                     reconnect_timeout=0.0))
        outcome["worker"] = worker
        outcome["exit"] = worker.run()

    worker_thread = threading.Thread(target=work, daemon=True)
    worker_thread.start()
    wait_for(lambda: "worker" in outcome, timeout=10.0)

    service, client, thread = start_service(
        dist_port=port, dist_wait_workers=60.0,
        checkpoint_dir=str(tmp_path))
    try:
        streamed = client.run(SWEEP_JOB)
        direct = Runner(workers=2).run(
            SweepSpec(models=tuple(SWEEP_SPEC["models"]),
                      schemes=tuple(SWEEP_SPEC["schemes"])))
        assert streamed["table"]["rows"] == direct.rows
        # --dist-wait-workers held the local pool back, so the parked
        # worker must have registered and served every unit
        assert outcome["worker"].units_done >= 1
    finally:
        outcome["worker"].drain()
        stop_service(service, thread)
        worker_thread.join(20)


def test_journaled_flight_resumes_on_startup(fresh_memory_cache, tmp_path):
    # manufacture what a daemon killed mid-flight leaves behind: a
    # journal whose durable header carries the resubmittable request
    request = parse_job_request(PIPELINE_JOB)
    job = request.jobs()[0]
    fingerprint = code_fingerprint()
    key = request.key(fingerprint)
    path = os.path.join(str(tmp_path), key + ".journal")
    journal, replayed = Journal.recover(
        path, fingerprint, [unit_key([job], fingerprint)],
        meta={"request": request.resubmit_body()})
    journal.close()
    assert replayed is None  # fresh journal, durable header written

    service, client, thread = start_service(
        dist_port=0, checkpoint_dir=str(tmp_path))
    try:
        assert service.metrics.get("flights_resumed_total") == 1
        # the ownerless flight completes and its journal is spent
        wait_for(lambda: not os.path.exists(path), timeout=60.0)
        wait_for(lambda: service.metrics.get("completed_total") == 1,
                 timeout=30.0)
        assert service.metrics.get("distributed_flights_total") == 1

        # its rows landed in the memory cache: a client asking for the
        # same request is answered without recomputing
        result = client.run(PIPELINE_JOB)
        assert result["cached"] is True
        assert result["rows"] == direct_pipeline_rows()
    finally:
        stop_service(service, thread)


def test_unreadable_journal_quarantined_on_startup(fresh_memory_cache,
                                                   tmp_path):
    path = os.path.join(str(tmp_path), "deadbeef.journal")
    with open(path, "wb") as handle:
        handle.write(b"\xff not a journal\n")

    service, client, thread = start_service(
        dist_port=0, checkpoint_dir=str(tmp_path))
    try:
        assert service.metrics.get("journals_quarantined_total") == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # the daemon is healthy: flights still execute
        result = client.run(PIPELINE_JOB)
        assert result["rows"] == direct_pipeline_rows()
    finally:
        stop_service(service, thread)
