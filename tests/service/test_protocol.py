"""Wire-protocol unit tests: request validation, content-addressed job
identity, and NDJSON event framing."""

import pytest

from repro.service.protocol import (
    JobRequest,
    ProtocolError,
    decode_event,
    encode_event,
    parse_job_request,
    rejection_body,
)

SPEC = {"models": ["alexnet", "mobilenet"], "schemes": ["np", "bp"]}


class TestSweepParsing:
    def test_preset_resolves_to_jobs(self):
        request = parse_job_request({"kind": "sweep", "preset": "fig3-inference"})
        assert request.kind == "sweep"
        assert request.preset == "fig3-inference"
        assert len(request.jobs()) > 0
        assert all(job.executor for job in request.jobs())

    def test_spec_resolves_to_grid(self):
        request = parse_job_request({"kind": "sweep", "spec": SPEC})
        assert len(request.jobs()) == 4  # 2 models x 2 schemes
        assert request.spec["models"] == ["alexnet", "mobilenet"]

    def test_unknown_preset_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="no-such-sweep"):
            parse_job_request({"kind": "sweep", "preset": "no-such-sweep"})

    def test_preset_and_spec_are_exclusive(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_job_request({"kind": "sweep", "preset": "fig3-inference",
                               "spec": SPEC})
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_job_request({"kind": "sweep"})

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown spec field"):
            parse_job_request({"kind": "sweep",
                               "spec": {"models": ["alexnet"], "model": "x"}})

    def test_unknown_model_rejected_at_submission(self):
        with pytest.raises(ProtocolError, match="invalid sweep spec"):
            parse_job_request({"kind": "sweep",
                               "spec": {"models": ["not-a-model"]}})

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown job kind"):
            parse_job_request({"kind": "bake-cookies"})
        with pytest.raises(ProtocolError):
            parse_job_request(["not", "an", "object"])


class TestPipelineParsing:
    def test_defaults_filled_canonically(self):
        request = parse_job_request({"kind": "pipeline", "workload": "streaming",
                                     "params": {"nbytes": 1 << 20}})
        assert request.kind == "pipeline"
        (job,) = request.jobs()
        assert job.executor == "pipeline_run"
        assert request.params["workload"] == "streaming"
        assert request.params["chunk_requests"] > 0
        assert isinstance(request.params["schemes"], list)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="invalid pipeline request"):
            parse_job_request({"kind": "pipeline", "workload": "gpt9000"})

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ProtocolError, match="invalid pipeline request"):
            parse_job_request({"kind": "pipeline", "workload": "streaming",
                               "schemes": ["np", "rot13"],
                               "params": {"nbytes": 1 << 20}})

    def test_bad_chunk_requests_rejected(self):
        with pytest.raises(ProtocolError, match="chunk_requests"):
            parse_job_request({"kind": "pipeline", "workload": "streaming",
                               "chunk_requests": 0,
                               "params": {"nbytes": 1 << 20}})

    def test_params_may_not_shadow_reserved_fields(self):
        with pytest.raises(ProtocolError, match="may not override"):
            parse_job_request({"kind": "pipeline", "workload": "streaming",
                               "params": {"workload": "random"}})


class TestContentAddressing:
    def test_key_ignores_json_field_order(self):
        a = parse_job_request({"kind": "sweep", "spec": SPEC})
        b = parse_job_request({"kind": "sweep",
                               "spec": {"schemes": ["np", "bp"],
                                        "models": ["alexnet", "mobilenet"]}})
        assert a.key("fp") == b.key("fp")

    def test_key_distinguishes_different_work(self):
        a = parse_job_request({"kind": "sweep", "spec": SPEC})
        b = parse_job_request({"kind": "sweep",
                               "spec": {**SPEC, "schemes": ["np"]}})
        assert a.key("fp") != b.key("fp")

    def test_key_depends_on_code_fingerprint(self):
        request = parse_job_request({"kind": "sweep", "spec": SPEC})
        assert request.key("v1") != request.key("v2")

    def test_pipeline_key_ignores_params_order(self):
        a = parse_job_request({"kind": "pipeline", "workload": "streaming",
                               "params": {"nbytes": 1 << 20, "stride": 64}})
        b = parse_job_request({"kind": "pipeline", "workload": "streaming",
                               "params": {"stride": 64, "nbytes": 1 << 20}})
        assert a.key() == b.key()

    def test_describe_summarizes_without_payload(self):
        request = parse_job_request({"kind": "sweep", "spec": SPEC})
        described = request.describe()
        assert described["kind"] == "sweep"
        assert described["jobs"] == 4


class TestEventFraming:
    def test_roundtrip(self):
        event = {"event": "rows", "index": 3, "rows": [{"a": 1}]}
        assert decode_event(encode_event(event).strip()) == event

    def test_encoding_is_canonical(self):
        a = encode_event({"b": 1, "a": 2, "event": "x"})
        b = encode_event({"event": "x", "a": 2, "b": 1})
        assert a == b  # byte-identical across coalesced subscribers

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError):
            decode_event(b"not json")
        with pytest.raises(ProtocolError):
            decode_event(b"[1, 2]")
        with pytest.raises(ProtocolError):
            decode_event(b'{"no_event_field": true}')

    def test_rejection_body_shape(self):
        body = rejection_body(7, queued=3, running=2)
        assert body == {"error": "saturated", "retry_after": 7,
                        "queued": 3, "running": 2}


class TestJobRequestSurface:
    def test_jobs_returns_a_copy(self):
        request = parse_job_request({"kind": "sweep", "spec": SPEC})
        jobs = request.jobs()
        jobs.clear()
        assert len(request.jobs()) == 4

    def test_key_is_hex_sha256(self):
        key = JobRequest(kind="sweep").key()
        assert len(key) == 64
        int(key, 16)  # parses as hex
