"""Service integration tests: a real ``ReproService`` bound to an
ephemeral port on a background event-loop thread, driven over actual
sockets by the stdlib client.

Determinism notes: every concurrency-sensitive test pins
``max_running=1`` and parks a long streaming-pipeline "blocker" flight
in the single executor slot, so subsequently submitted flights are
guaranteed to overlap in the queue (coalescing, rejection) or to be
observably running (cancellation) without sleeping for luck.
"""

import asyncio
import threading
import time

import pytest

import repro.experiments.runner as runner_module
from repro import perf
from repro.experiments import Runner, SweepSpec
from repro.experiments.executors import pipeline_rows
from repro.service import (
    ReproService,
    ServeConfig,
    ServiceClient,
    ServiceRejected,
)

SWEEP_SPEC = {"models": ["alexnet", "mobilenet"], "schemes": ["np", "bp"]}
SWEEP_JOB = {"kind": "sweep", "spec": SWEEP_SPEC}
PIPELINE_JOB = {"kind": "pipeline", "workload": "streaming",
                "schemes": ["np", "guardnn-ci"], "chunk_requests": 1 << 12,
                "params": {"nbytes": 1 << 20}}
#: long enough (~2M requests, 128 chunks) to still be running while a
#: test submits follow-up jobs; cancelled at a chunk boundary when its
#: stream is closed, so tests never wait for it to finish
BLOCKER_JOB = {"kind": "pipeline", "workload": "streaming",
               "schemes": ["np"], "chunk_requests": 1 << 14,
               "params": {"nbytes": 128 << 20}}


@pytest.fixture
def fresh_memory_cache():
    previous = perf.fast_enabled()
    perf.set_fast(True)
    runner_module._MEMORY_CACHE.clear()
    yield runner_module._MEMORY_CACHE
    runner_module._MEMORY_CACHE.clear()
    perf.set_fast(previous)
    perf.clear_caches()


def start_service(**overrides):
    config = ServeConfig(port=0, workers=2, cache=False, **overrides)
    service = ReproService(config)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready)), daemon=True)
    thread.start()
    assert ready.wait(15), "service failed to come up"
    client = ServiceClient("127.0.0.1", service.port, timeout=120)
    return service, client, thread


@pytest.fixture
def service_and_client(fresh_memory_cache):
    service, client, thread = start_service(max_running=1, max_queued=8)
    yield service, client
    service.request_shutdown()
    thread.join(15)


def wait_for(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached")


def drain(events):
    terminal = None
    for event in events:
        if event["event"] in ("result", "error", "cancelled"):
            terminal = event
    return terminal


class TestBitIdenticalResults:
    def test_sweep_matches_direct_runner(self, service_and_client):
        _, client = service_and_client
        streamed = client.run(SWEEP_JOB)
        direct = Runner(workers=2).run(
            SweepSpec(models=tuple(SWEEP_SPEC["models"]),
                      schemes=tuple(SWEEP_SPEC["schemes"])))
        assert streamed["table"]["rows"] == direct.rows
        assert streamed["table"]["columns"] == direct.columns

    def test_sweep_partials_reassemble_to_result(self, service_and_client):
        _, client = service_and_client
        partial_rows = []
        result = client.run(
            SWEEP_JOB,
            on_event=lambda e: partial_rows.extend(e["rows"])
            if e["event"] == "rows" else None)
        assert partial_rows == result["table"]["rows"]

    def test_pipeline_matches_direct_rows(self, service_and_client):
        _, client = service_and_client
        progress = []
        result = client.run(
            PIPELINE_JOB,
            on_event=lambda e: progress.append(e)
            if e["event"] == "progress" else None)
        direct = pipeline_rows({
            "workload": PIPELINE_JOB["workload"],
            "schemes": PIPELINE_JOB["schemes"],
            "chunk_requests": PIPELINE_JOB["chunk_requests"],
            **PIPELINE_JOB["params"]})
        assert result["rows"] == direct
        assert result["cached"] is False
        # 1 MiB / 64 B = 16384 requests in 4096-request chunks
        assert [p["chunk"] for p in progress] == [1, 2, 3, 4]
        assert progress[-1]["requests_done"] == progress[-1]["total_requests"]

    def test_repeat_pipeline_served_from_cache(self, service_and_client):
        _, client = service_and_client
        first = client.run(PIPELINE_JOB)
        second = client.run(PIPELINE_JOB)
        assert second["cached"] is True
        assert second["rows"] == first["rows"]


class TestCoalescing:
    def test_concurrent_identical_sweeps_execute_once(self, service_and_client):
        service, client = service_and_client
        blocker = client.submit(BLOCKER_JOB)
        assert next(blocker)["event"] == "accepted"
        try:
            stream_a = client.submit(SWEEP_JOB)
            accepted_a = next(stream_a)
            stream_b = client.submit(SWEEP_JOB)
            accepted_b = next(stream_b)
            assert accepted_a["coalesced"] is False
            assert accepted_b["coalesced"] is True
            assert accepted_a["key"] == accepted_b["key"]
        finally:
            blocker.close()  # free the slot so the sweep can run
        result_a, result_b = drain(stream_a), drain(stream_b)
        assert result_a == result_b
        assert result_a["event"] == "result"
        assert service.metrics.get("coalesced_total") == 1
        # blocker + one shared sweep flight — not one per subscriber
        assert service.metrics.get("executions_total") == 2

    def test_coalesced_subscriber_sees_replayed_prefix(self, service_and_client):
        service, client = service_and_client
        blocker = client.submit(BLOCKER_JOB)
        assert next(blocker)["event"] == "accepted"
        try:
            stream_a = client.submit(SWEEP_JOB)
            next(stream_a)
            stream_b = client.submit(SWEEP_JOB)
            next(stream_b)
        finally:
            blocker.close()
        # both subscribers observe the identical full event sequence
        events_a = [e for e in stream_a]
        events_b = [e for e in stream_b]
        assert events_a == events_b

    def test_different_jobs_do_not_coalesce(self, service_and_client):
        _, client = service_and_client
        stream_a = client.submit(SWEEP_JOB)
        key_a = next(stream_a)["key"]
        other = {"kind": "sweep",
                 "spec": {**SWEEP_SPEC, "schemes": ["np"]}}
        stream_b = client.submit(other)
        accepted_b = next(stream_b)
        assert accepted_b["key"] != key_a
        assert accepted_b["coalesced"] is False
        assert drain(stream_a)["event"] == "result"
        assert drain(stream_b)["event"] == "result"


class TestAdmissionControl:
    def test_saturated_service_rejects_with_retry_after(self, fresh_memory_cache):
        service, client, thread = start_service(max_running=1, max_queued=0)
        try:
            blocker = client.submit(BLOCKER_JOB)
            assert next(blocker)["event"] == "accepted"
            # the blocker must hold the slot (not just the queue) before
            # a zero-length queue can demonstrably shed load
            wait_for(lambda: service.admission.gauges()["running"] == 1)
            with pytest.raises(ServiceRejected) as rejected:
                client.run(SWEEP_JOB)
            assert rejected.value.retry_after >= 1
            assert rejected.value.body["error"] == "saturated"
            assert service.metrics.get("rejected_total") == 1
            blocker.close()
            # capacity frees once the cancellation lands; the same job
            # is then admitted
            wait_for(lambda: service.admission.gauges()["running"] == 0)
            assert client.run(SWEEP_JOB)["event"] == "result"
        finally:
            service.request_shutdown()
            thread.join(15)

    def test_coalesced_submission_bypasses_admission(self, fresh_memory_cache):
        service, client, thread = start_service(max_running=1, max_queued=0)
        try:
            blocker = client.submit(BLOCKER_JOB)
            assert next(blocker)["event"] == "accepted"
            wait_for(lambda: service.admission.gauges()["running"] == 1)
            # identical to the running flight: joins it instead of
            # consuming (unavailable) capacity
            twin = client.submit(BLOCKER_JOB)
            assert next(twin)["coalesced"] is True
            twin.close()
            blocker.close()
            # both subscribers gone: let the cancellation land before
            # the fixture tears the loop down under the worker thread
            wait_for(lambda: service.metrics.get("cancelled_total") == 1)
        finally:
            service.request_shutdown()
            thread.join(15)


class TestCancellation:
    def test_disconnect_cancels_and_releases_slot(self, service_and_client):
        service, client = service_and_client
        blocker = client.submit(BLOCKER_JOB)
        assert next(blocker)["event"] == "accepted"
        wait_for(lambda: service.admission.gauges()["running"] == 1)
        blocker.close()  # last subscriber gone -> cooperative cancel
        wait_for(lambda: service.metrics.get("cancelled_total") == 1)
        wait_for(lambda: service.admission.gauges()["running"] == 0)
        assert service.coalescer.inflight == 0
        # the slot is genuinely reusable
        assert client.run(SWEEP_JOB)["event"] == "result"

    def test_cancelled_flight_is_not_a_failure(self, service_and_client):
        service, client = service_and_client
        blocker = client.submit(BLOCKER_JOB)
        assert next(blocker)["event"] == "accepted"
        wait_for(lambda: service.admission.gauges()["running"] == 1)
        blocker.close()
        wait_for(lambda: service.metrics.get("cancelled_total") == 1)
        assert service.metrics.get("failed_total") == 0


class TestMetricsEndpoint:
    def test_counters_match_traffic(self, service_and_client):
        _, client = service_and_client
        client.run(SWEEP_JOB)
        client.run(PIPELINE_JOB)
        client.run(PIPELINE_JOB)  # in-memory cache hit, still a flight
        snapshot = client.metrics()
        counters = snapshot["counters"]
        assert counters["requests_total"] == 3
        assert counters["admitted_total"] == 3
        assert counters["executions_total"] == 3
        assert counters["completed_total"] == 3
        assert counters["failed_total"] == 0
        assert counters["rejected_total"] == 0
        assert counters["events_streamed_total"] >= 3 * 2  # accepted + result
        assert counters["rows_streamed_total"] > 0
        assert snapshot["latency"]["count"] == 3
        assert snapshot["latency"]["p99_s"] >= snapshot["latency"]["p50_s"]
        assert snapshot["gauges"]["running"] == 0
        assert snapshot["gauges"]["inflight"] == 0
        assert snapshot["protocol_version"] == 1

    def test_bad_request_is_counted_not_fatal(self, service_and_client):
        _, client = service_and_client
        with pytest.raises(RuntimeError, match="400"):
            list(client.submit({"kind": "sweep", "preset": "nope"}))
        snapshot = client.metrics()
        assert snapshot["counters"]["bad_requests_total"] == 1
        assert snapshot["counters"]["admitted_total"] == 0
        # the daemon survives to serve a well-formed job
        assert client.run(SWEEP_JOB)["event"] == "result"

    def test_health_endpoint(self, service_and_client):
        _, client = service_and_client
        assert client.health() is True
