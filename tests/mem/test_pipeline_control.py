"""Regression tests for the pipeline control seams the service relies
on: per-chunk progress callbacks, cooperative cancellation at chunk
boundaries, the one-shot guard, and NaN (not a silent 0.0) for a
slowdown against an empty baseline."""

import math
from types import SimpleNamespace

import pytest

from repro.mem.pipeline import PipelineCancelled, PipelineResult, TracePipeline
from repro.workloads import build_trace_spec

#: 1 MiB at the 64 B default stride = 16384 requests; 4096-request
#: chunks give exactly 4 chunk boundaries to observe
SPEC_PARAMS = {"nbytes": 1 << 20}
CHUNK = 4096


def make_pipeline(schemes=("np",)):
    return TracePipeline(build_trace_spec("streaming", **SPEC_PARAMS),
                         schemes=schemes, chunk_requests=CHUNK)


def result_with_cycles(cycles):
    return PipelineResult(scheme="np",
                          result=SimpleNamespace(cycles=cycles),
                          source_requests=0, chunks=0, chunk_requests=CHUNK)


class TestSlowdown:
    def test_zero_cycle_baseline_is_nan_not_zero(self):
        slow = result_with_cycles(1000).slowdown_vs(result_with_cycles(0))
        assert math.isnan(slow)

    def test_normal_ratio(self):
        assert result_with_cycles(300).slowdown_vs(
            result_with_cycles(100)) == pytest.approx(3.0)


class TestProgressCallback:
    def test_chunk_indices_are_one_based_and_complete(self):
        seen = []
        make_pipeline().run(
            on_chunk=lambda chunk, done, total: seen.append((chunk, done, total)))
        assert [chunk for chunk, _, _ in seen] == [1, 2, 3, 4]
        done = [d for _, d, _ in seen]
        assert done == sorted(done)
        assert seen[-1][1] == seen[-1][2]  # requests_done reaches total


class TestCancellation:
    def test_should_stop_raises_at_chunk_boundary(self):
        chunks_fed = []

        def stop_after_two():
            return len(chunks_fed) >= 2

        with pytest.raises(PipelineCancelled, match="after 2 of 4 chunks"):
            make_pipeline().run(
                on_chunk=lambda chunk, done, total: chunks_fed.append(chunk),
                should_stop=stop_after_two)
        assert chunks_fed == [1, 2]  # no chunk generated past the stop

    def test_never_stopping_runs_to_completion(self):
        results = make_pipeline(("np", "guardnn-ci")).run(
            should_stop=lambda: False)
        assert set(results) == {"np", "guardnn-ci"}
        assert all(r.chunks == 4 for r in results.values())
        assert all(r.cycles > 0 for r in results.values())


class TestOneShotGuard:
    def test_second_run_is_refused(self):
        pipeline = make_pipeline()
        pipeline.run()
        with pytest.raises(RuntimeError, match="already ran"):
            pipeline.run()

    def test_cancelled_run_also_consumes_the_pipeline(self):
        pipeline = make_pipeline()
        with pytest.raises(PipelineCancelled):
            pipeline.run(should_stop=lambda: True)
        with pytest.raises(RuntimeError, match="already ran"):
            pipeline.run()
