"""Set-associative write-back cache (the BP metadata cache)."""

import pytest

from repro.mem.cache import SetAssociativeCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(4096, 64, 4)
        hit, wb = cache.access(0, False)
        assert not hit and wb is None
        hit, wb = cache.access(32, False)  # same line
        assert hit

    def test_capacity_eviction_lru(self):
        cache = SetAssociativeCache(64 * 4, 64, 4)  # one set, 4 ways
        for i in range(4):
            cache.access(i * 64 * 1, False)  # same set? num_sets=1 -> yes
        cache.access(0, False)  # touch line 0 -> MRU
        hit, _ = cache.access(4 * 64, False)  # evicts LRU = line 1
        assert not hit
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_dirty_eviction_reports_writeback(self):
        cache = SetAssociativeCache(64 * 2, 64, 2)  # one set, 2 ways
        cache.access(0, True)  # dirty
        cache.access(64, False)
        _, wb = cache.access(128, False)  # evicts line 0 (dirty)
        assert wb == 0
        assert cache.stats.dirty_evictions == 1

    def test_clean_eviction_no_writeback(self):
        cache = SetAssociativeCache(64 * 2, 64, 2)
        cache.access(0, False)
        cache.access(64, False)
        _, wb = cache.access(128, False)
        assert wb is None

    def test_write_marks_existing_line_dirty(self):
        cache = SetAssociativeCache(64 * 2, 64, 2)
        cache.access(0, False)  # clean
        cache.access(0, True)  # now dirty
        cache.access(64, False)
        _, wb = cache.access(128, False)
        assert wb == 0

    def test_flush_returns_dirty_lines(self):
        cache = SetAssociativeCache(4096, 64, 4)
        cache.access(0, True)
        cache.access(64, False)
        cache.access(128, True)
        dirty = sorted(cache.flush())
        assert dirty == [0, 128]
        assert not cache.contains(0)

    def test_hit_rate(self):
        cache = SetAssociativeCache(4096, 64, 4)
        cache.access(0, False)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 64, 4)

    def test_writeback_address_reconstruction(self):
        """The evicted address must map back to the same set."""
        cache = SetAssociativeCache(8192, 64, 2)
        sets = cache.num_sets
        base = 64 * sets  # same set as address 0, different tag
        cache.access(0, True)
        cache.access(base, False)
        _, wb = cache.access(2 * base, False)
        assert wb == 0
