"""Unit tests for the structure-of-arrays request batch."""

import pytest

from repro.mem.batch import KIND_CODE, KINDS, MAC_CODE, RequestBatch
from repro.mem.trace import MemoryRequest, RequestKind


class TestRequestBatch:
    def test_append_and_len(self):
        batch = RequestBatch()
        assert len(batch) == 0
        batch.append(64, 64, False)
        batch.append(128, 16, True, MAC_CODE)
        assert len(batch) == 2
        assert batch.request(0) == MemoryRequest(64, 64, False)
        assert batch.request(1) == MemoryRequest(128, 16, True, RequestKind.MAC)

    def test_append_validates_like_memory_request(self):
        batch = RequestBatch()
        with pytest.raises(ValueError):
            batch.append(-1, 64, False)
        with pytest.raises(ValueError):
            batch.append(0, 0, False)
        assert len(batch) == 0

    def test_round_trip_preserves_order_and_kinds(self):
        trace = [
            MemoryRequest(0, 64, False),
            MemoryRequest(1 << 34, 64, True, RequestKind.VN),
            MemoryRequest(512, 12, False, RequestKind.MAC),
            MemoryRequest(1 << 35, 64, True, RequestKind.TREE),
        ]
        batch = RequestBatch.from_requests(trace)
        assert batch.to_requests() == trace
        assert list(batch) == trace

    def test_extend_concatenates(self):
        a = RequestBatch.from_requests([MemoryRequest(0, 64, False)])
        b = RequestBatch.from_requests([MemoryRequest(64, 64, True)])
        a.extend(b)
        assert a.to_requests() == [MemoryRequest(0, 64, False),
                                   MemoryRequest(64, 64, True)]

    def test_equality(self):
        trace = [MemoryRequest(0, 64, False), MemoryRequest(64, 64, True)]
        assert RequestBatch.from_requests(trace) == RequestBatch.from_requests(trace)
        assert RequestBatch.from_requests(trace) != RequestBatch()

    def test_stats_matches_scalar_accounting(self):
        trace = [
            MemoryRequest(0, 64, False),
            MemoryRequest(64, 64, False),
            MemoryRequest(128, 100, True),
            MemoryRequest(1 << 34, 64, False, RequestKind.VN),
            MemoryRequest(1 << 35, 12, True, RequestKind.MAC),
        ]
        from repro.mem.trace import TraceStats

        reference = TraceStats()
        for req in trace:
            reference.add(req)
        stats = RequestBatch.from_requests(trace).stats()
        assert stats.read_bytes == reference.read_bytes
        assert stats.write_bytes == reference.write_bytes
        assert stats.total_bytes == reference.total_bytes
        assert stats.metadata_bytes == reference.metadata_bytes

    def test_stats_omits_untouched_kinds(self):
        stats = RequestBatch.from_requests([MemoryRequest(0, 64, False)]).stats()
        assert stats.read_bytes == {RequestKind.DATA: 64}
        assert stats.write_bytes == {}

    def test_kind_code_table_is_total(self):
        assert set(KIND_CODE) == set(RequestKind)
        for kind in RequestKind:
            assert KINDS[KIND_CODE[kind]] is kind
