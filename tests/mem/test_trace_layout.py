"""Memory request/trace types and the address layout."""

import pytest

from repro.mem.layout import AddressLayout
from repro.mem.trace import MemoryRequest, RequestKind, TraceStats


class TestMemoryRequest:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryRequest(-1, 64, False)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            MemoryRequest(0, 0, False)

    def test_metadata_kinds(self):
        assert not RequestKind.DATA.is_metadata()
        assert RequestKind.VN.is_metadata()
        assert RequestKind.MAC.is_metadata()
        assert RequestKind.TREE.is_metadata()


class TestTraceStats:
    def test_add_and_totals(self):
        stats = TraceStats()
        stats.add(MemoryRequest(0, 64, False))
        stats.add(MemoryRequest(64, 64, True))
        stats.add(MemoryRequest(128, 16, False, RequestKind.MAC))
        assert stats.data_bytes == 128
        assert stats.metadata_bytes == 16
        assert stats.total_bytes == 144

    def test_traffic_increase(self):
        stats = TraceStats()
        stats.add_bytes(RequestKind.DATA, 1000, is_write=False)
        stats.add_bytes(RequestKind.MAC, 250, is_write=True)
        assert stats.traffic_increase() == pytest.approx(0.25)

    def test_traffic_increase_no_data(self):
        assert TraceStats().traffic_increase() == 0.0

    def test_merge(self):
        a, b = TraceStats(), TraceStats()
        a.add_bytes(RequestKind.DATA, 10, False)
        b.add_bytes(RequestKind.DATA, 20, False)
        b.add_bytes(RequestKind.VN, 5, True)
        a.merge(b)
        assert a.data_bytes == 30
        assert a.kind_bytes(RequestKind.VN) == 5

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            TraceStats().add_bytes(RequestKind.DATA, -1, False)


class TestAddressLayout:
    def test_row_bytes(self):
        layout = AddressLayout()
        assert layout.row_bytes == 8192

    def test_decompose_compose_round_trip(self):
        layout = AddressLayout()
        for address in (0, 64, 8192, 123456 * 64, 1 << 30):
            bank, row, col = layout.decompose(address)
            burst_base = (address // 64) * 64
            assert layout.compose(bank, row, col) == burst_base

    def test_sequential_addresses_same_row(self):
        layout = AddressLayout()
        banks_rows = {layout.decompose(a)[:2] for a in range(0, 8192, 64)}
        assert len(banks_rows) == 1  # one full row before switching

    def test_row_crossing_changes_bank(self):
        layout = AddressLayout()
        b0 = layout.decompose(0)[0]
        b1 = layout.decompose(8192)[0]
        assert b0 != b1  # next row chunk goes to the next bank

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AddressLayout(burst_bytes=48)

    def test_compose_validates(self):
        layout = AddressLayout()
        with pytest.raises(ValueError):
            layout.compose(layout.banks, 0, 0)
        with pytest.raises(ValueError):
            layout.compose(0, 0, layout.columns_per_row)
