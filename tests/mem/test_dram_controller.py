"""DDR4 timing model and the FR-FCFS controller."""

import numpy as np
import pytest

from repro.mem.controller import MemoryController
from repro.mem.dram import DDR4_2400, DramChip
from repro.mem.trace import MemoryRequest
from repro.workloads.generators import random_trace, streaming_trace, strided_trace


class TestDramChip:
    def test_row_hit_faster_than_conflict(self):
        chip = DramChip()
        _, first = chip.access(0, False, 0)
        hit_start = first
        next_cmd, hit_end = chip.access(64, False, hit_start)
        hit_cost = hit_end - hit_start
        # conflict: same bank, different row
        row_bytes = chip.layout.row_bytes * chip.layout.banks
        _, conflict_end = chip.access(row_bytes, False, next_cmd)
        conflict_cost = conflict_end - next_cmd
        assert conflict_cost > hit_cost

    def test_stats_classification(self):
        chip = DramChip()
        chip.access(0, False, 0)  # empty bank -> miss (activate)
        chip.access(64, False, 100)  # same row -> hit
        chip.access(chip.layout.row_bytes * chip.layout.banks, False, 200)  # conflict
        assert chip.stats["row_misses"] == 1
        assert chip.stats["row_hits"] == 1
        assert chip.stats["row_conflicts"] == 1

    def test_refresh_fires(self):
        chip = DramChip()
        chip.access(0, False, 0)
        chip.access(64, False, DDR4_2400.tREFI + 10)
        assert chip.stats["refreshes"] >= 1

    def test_refresh_closes_rows(self):
        chip = DramChip()
        chip.access(0, False, 0)
        assert chip.open_row_of(0) is not None
        chip.access(64, False, DDR4_2400.tREFI + 10)
        # the refresh closed the row; this access re-opened it
        assert chip.stats["row_misses"] == 2


class TestController:
    def test_streaming_near_peak_bandwidth(self):
        mc = MemoryController()
        bw = mc.effective_bandwidth_gbps(nbytes=1 << 18)
        assert bw > 0.85 * DDR4_2400.peak_bandwidth_gbps

    def test_random_much_slower_than_streaming(self):
        rng = np.random.default_rng(7)
        stream = MemoryController().run_trace(streaming_trace(1 << 17))
        rand = MemoryController().run_trace(random_trace(2048, 1 << 28, rng))
        stream_bw = stream.bandwidth_gbps(DDR4_2400.freq_mhz)
        rand_bw = rand.bandwidth_gbps(DDR4_2400.freq_mhz)
        assert rand_bw < 0.5 * stream_bw

    def test_large_requests_split_into_bursts(self):
        mc = MemoryController()
        result = mc.run_trace([MemoryRequest(0, 4096, False)])
        assert result.bursts == 4096 // 64
        assert result.requests == 1

    def test_fr_fcfs_prefers_row_hits(self):
        """A row-hit-rich trace completes faster than the same requests
        forced into conflict order on a single-entry window."""
        layout_conflict_stride = 8192 * 16  # same bank, new row every time
        hits = strided_trace(256, 64)
        conflicts = strided_trace(256, layout_conflict_stride)
        t_hits = MemoryController().run_trace(hits).cycles
        t_conf = MemoryController().run_trace(conflicts).cycles
        assert t_conf > 2 * t_hits

    def test_write_fraction_validated(self):
        with pytest.raises(ValueError):
            MemoryController().effective_bandwidth_gbps(write_fraction=1.5)

    def test_empty_trace(self):
        result = MemoryController().run_trace([])
        assert result.cycles == 0
        assert result.bursts == 0

    def test_cycles_monotonic_in_trace_length(self):
        short = MemoryController().run_trace(streaming_trace(1 << 14))
        longer = MemoryController().run_trace(streaming_trace(1 << 16))
        assert longer.cycles > short.cycles
