"""CLI argument validation: nonsensical durations/counters die at the
option parser with the flag's name and an actionable message — never as
a deep-stack ValueError (or a silent misbehaviour) later."""

import pytest

from repro.cli import build_parser


def _error_for(argv, capsys):
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(argv)
    assert excinfo.value.code == 2
    return capsys.readouterr().err


REJECTED = [
    (["serve", "--checkpoint-every", "-1"], "--checkpoint-every"),
    (["serve", "--drain-grace", "-3"], "--drain-grace"),
    (["serve", "--chunk-timeout", "0"], "--chunk-timeout"),
    (["serve", "--chunk-timeout", "-2.5"], "--chunk-timeout"),
    (["serve", "--chunk-retries", "-1"], "--chunk-retries"),
    (["serve", "--workers", "0"], "--workers"),
    (["serve", "--max-running", "0"], "--max-running"),
    (["serve", "--max-queued", "-1"], "--max-queued"),
    (["serve", "--stream-jobs", "0"], "--stream-jobs"),
    (["pipeline", "--workload", "streaming", "--chunk-requests", "0"],
     "--chunk-requests"),
    (["pipeline", "--workload", "streaming", "--checkpoint-every", "-4"],
     "--checkpoint-every"),
    (["sweep", "--models", "alexnet", "--workers", "-2"], "--workers"),
    (["sweep", "--models", "alexnet", "--distributed",
      "--lease-seconds", "0"], "--lease-seconds"),
    (["sweep", "--models", "alexnet", "--distributed",
      "--unit-jobs", "-1"], "--unit-jobs"),
    (["sweep", "--models", "alexnet", "--distributed",
      "--wait-workers", "-1"], "--wait-workers"),
    (["work", "http://h:1", "--workers", "0"], "--workers"),
    (["work", "http://h:1", "--reconnect-timeout", "-1"],
     "--reconnect-timeout"),
    (["work", "http://h:1", "--chunk-retries", "nope"], "--chunk-retries"),
]


@pytest.mark.parametrize("argv,flag", REJECTED, ids=lambda v: " ".join(v)
                         if isinstance(v, list) else v)
def test_invalid_values_rejected_with_flag_named(argv, flag, capsys):
    err = _error_for(argv, capsys)
    assert flag in err, f"error does not name the offending flag: {err}"
    assert "positive" in err or "integer" in err or "number" in err


def test_listen_requires_host_port(capsys):
    err = _error_for(["sweep", "--models", "alexnet", "--distributed",
                      "--listen", "not-an-address"], capsys)
    assert "HOST:PORT" in err


def test_valid_values_parse():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--checkpoint-every", "5", "--drain-grace", "2.5",
         "--chunk-timeout", "30", "--chunk-retries", "0",
         "--max-queued", "0"])
    assert args.checkpoint_every == 5
    assert args.drain_grace == 2.5
    assert args.chunk_timeout == 30.0
    assert args.chunk_retries == 0
    assert args.max_queued == 0

    args = parser.parse_args(
        ["sweep", "--preset", "x", "--distributed",
         "--listen", "0.0.0.0:8790", "--lease-seconds", "2",
         "--straggler-factor", "3.5"])
    assert args.listen == ("0.0.0.0", 8790)
    assert args.lease_seconds == 2.0
    assert args.straggler_factor == 3.5

    args = parser.parse_args(["work", "http://10.0.0.5:8790",
                              "--name", "rig", "--workers", "4"])
    assert args.url == "http://10.0.0.5:8790"
    assert args.workers == 4
