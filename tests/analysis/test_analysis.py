"""Analysis models: FPGA prototype, microcontroller, ASIC area,
energy, and the comparison table."""

import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.analysis.area import AES_CORE_28NM, AsicAreaModel, TPU_V1_AREA
from repro.analysis.comparison import ComparisonTable
from repro.analysis.energy import EnergyModel
from repro.analysis.fpga import (
    CHAIDNN_PLATFORM,
    FpgaConfig,
    FpgaPrototypeModel,
    FpgaResourceModel,
)
from repro.analysis.microcontroller import InstructionLatencyModel, MicrocontrollerModel
from repro.protection.none import NoProtection


class TestFpgaPrototype:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FpgaConfig(512, 7)
        with pytest.raises(ValueError):
            FpgaConfig(0, 8)

    def test_macs_per_cycle(self):
        assert FpgaConfig(512, 8).macs_per_cycle == 1024
        assert FpgaConfig(512, 6).macs_per_cycle == 2048

    def test_array_shape_covers_macs(self):
        for dsps in (128, 256, 512, 1024):
            for bits in (6, 8):
                rows, cols = FpgaConfig(dsps, bits).array_shape()
                assert rows * cols == FpgaConfig(dsps, bits).macs_per_cycle

    def test_throughput_scales_with_dsps(self):
        model = FpgaPrototypeModel()
        fps = [model.table_row("alexnet", FpgaConfig(d, 8))["baseline_fps"]
               for d in (128, 256, 512)]
        assert fps[0] < fps[1] < fps[2]

    def test_6bit_faster_than_8bit(self):
        model = FpgaPrototypeModel()
        f8 = model.table_row("vgg16", FpgaConfig(512, 8))["baseline_fps"]
        f6 = model.table_row("vgg16", FpgaConfig(512, 6))["baseline_fps"]
        assert 1.4 < f6 / f8 < 2.2  # paper shows ~1.8-1.9x

    def test_overhead_below_paper_bound(self):
        """Table II: every configuration's GuardNN_C overhead < 3.5%."""
        model = FpgaPrototypeModel()
        for net in ("alexnet", "googlenet", "resnet50", "vgg16"):
            for dsps in (128, 1024):
                row = model.table_row(net, FpgaConfig(dsps, 8))
                assert 0 <= row["overhead_pct"] < 3.5

    def test_four_engines_reduce_overhead(self):
        """Section III-B: adding a fourth AES engine reduces the max
        overhead."""
        worst_cfg = FpgaConfig(1024, 6)
        three = FpgaPrototypeModel(aes_engines=3).table_row("resnet50", worst_cfg)
        four = FpgaPrototypeModel(aes_engines=4).table_row("resnet50", worst_cfg)
        assert four["overhead_pct"] < three["overhead_pct"]

    def test_network_ordering(self):
        """AlexNet > GoogleNet > ResNet > VGG in fps (Table II order)."""
        model = FpgaPrototypeModel()
        cfg = FpgaConfig(512, 8)
        fps = {net: model.table_row(net, cfg)["baseline_fps"]
               for net in ("alexnet", "googlenet", "resnet50", "vgg16")}
        assert fps["alexnet"] > fps["googlenet"] > fps["resnet50"] > fps["vgg16"]


class TestFpgaResources:
    def test_aes_overhead_matches_paper(self):
        luts_pct, ffs_pct = FpgaResourceModel().aes_overhead_pct()
        assert luts_pct == pytest.approx(8.2, abs=0.3)
        assert ffs_pct == pytest.approx(2.6, abs=0.2)

    def test_total_includes_mcu(self):
        total = FpgaResourceModel().total_overhead(aes_engines=3)
        assert total["luts"] == 3 * 9000 + 2700
        assert total["brams"] == 64
        assert total["brams_pct"] == pytest.approx(11.0, abs=0.1)


class TestMicrocontroller:
    def test_key_exchange_latency_near_paper(self):
        ms = MicrocontrollerModel().key_exchange_seconds() * 1e3
        assert 15 < ms < 35  # paper: 23.1 ms

    def test_sign_latency_near_paper(self):
        ms = MicrocontrollerModel().sign_seconds() * 1e3
        assert 3 < ms < 9  # paper: 4.8 ms

    def test_set_weight_ordering_follows_weight_size(self):
        lat = InstructionLatencyModel()
        ms = {n: lat.set_weight_seconds(build_model(n)) * 1e3
              for n in ("googlenet", "resnet50", "alexnet", "vgg16")}
        assert ms["googlenet"] < ms["resnet50"] < ms["alexnet"] < ms["vgg16"]

    def test_set_weight_vgg_magnitude(self):
        ms = InstructionLatencyModel().set_weight_seconds(build_model("vgg16")) * 1e3
        assert 30 < ms < 60  # paper: 43.3 ms

    def test_small_instructions_sub_millisecond(self):
        lat = InstructionLatencyModel()
        vgg = build_model("vgg16")
        assert lat.set_input_seconds(vgg) * 1e3 < 0.5  # paper: 0.1 ms
        assert lat.export_output_seconds(vgg) * 1e3 < 0.1  # paper: 0.01 ms

    def test_report_keys(self):
        report = InstructionLatencyModel().report(build_model("vgg16"))
        assert set(report) == {"key_exchange_ms", "set_weight_ms", "set_input_ms",
                               "export_output_ms", "sign_output_ms"}


class TestAsicArea:
    def test_engines_match_paper(self):
        model = AsicAreaModel()
        assert model.engines_needed() == 344

    def test_overhead_fractions(self):
        overhead = AsicAreaModel().overhead()
        assert overhead["area_pct"] == pytest.approx(0.32, abs=0.05)
        assert overhead["power_pct"] == pytest.approx(1.8, abs=0.2)

    def test_derate_validated(self):
        with pytest.raises(ValueError):
            AsicAreaModel(derate=0.0)

    def test_explicit_engine_count(self):
        overhead = AsicAreaModel().overhead(engines=10)
        assert overhead["engines"] == 10
        assert overhead["area_mm2"] == pytest.approx(10 * AES_CORE_28NM.area_mm2)


class TestEnergyAndComparison:
    def test_throughput_gops(self):
        model = build_model("alexnet")
        accel = AcceleratorModel(TPU_V1_CONFIG)
        result = accel.run(model, NoProtection())
        energy = EnergyModel(accelerator_power_w=40.0)
        gops = energy.throughput_gops(model, result)
        assert gops > 100  # a TPU-class device does >> 100 GOPs

    def test_comparison_table_structure(self):
        rows = ComparisonTable().as_dicts()
        assert len(rows) == 5
        names = [r["name"] for r in rows]
        assert names[0].startswith("CPU TEE")
        assert any("DELPHI" in n for n in names)

    def test_guardnn_dominates_alternatives(self):
        """The paper's three-orders-of-magnitude claim."""
        rows = {r["name"]: r for r in ComparisonTable().as_dicts()}
        guardnn = rows["GuardNN_CI (simulated)"]
        cpu = rows["CPU TEE (simulated)"]
        assert guardnn["throughput_gops"] > 1000 * cpu["throughput_gops"]
        assert guardnn["efficiency_gops_per_w"] > 1000 * cpu["efficiency_gops_per_w"]

    def test_guardnn_overhead_small_in_table(self):
        rows = {r["name"]: r for r in ComparisonTable().as_dicts()}
        assert rows["GuardNN_CI (simulated)"]["overhead_factor"] < 1.1
        assert rows["GuardNN_C (FPGA)"]["overhead_factor"] < 1.05

    def test_mpc_overhead_orders_of_magnitude(self):
        rows = {r["name"]: r for r in ComparisonTable().as_dicts()}
        assert rows["DELPHI MPC"]["overhead_factor"] == 1000.0
        assert rows["CrypTFLOW2 MPC"]["overhead_factor"] == 100.0
