"""TCB accounting."""

import os

import pytest

from repro.analysis.tcb import TcbReport, count_loc, measure_tcb


class TestCountLoc:
    def test_skips_blanks_and_comments(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("# comment\n\nx = 1\n  # indented comment\ny = 2\n")
        assert count_loc(str(f)) == 2


class TestMeasure:
    def test_categories_present(self):
        report = measure_tcb()
        labels = set(report.categories)
        assert any("crypto" in l for l in labels)
        assert any("memory protection" in l for l in labels)
        assert any("firmware" in l for l in labels)
        assert any("accelerator" in l for l in labels)

    def test_untrusted_majority_excluded(self):
        """Host software, performance models and analysis stay outside
        the TCB — the paper's small-TCB argument."""
        report = measure_tcb()
        assert report.untrusted_loc > 0
        assert 0.0 < report.tcb_fraction < 1.0

    def test_totals_consistent(self):
        report = measure_tcb()
        assert report.total_loc == report.tcb_loc + report.untrusted_loc

    def test_empty_report(self):
        report = TcbReport(categories={}, untrusted_loc=0)
        assert report.tcb_fraction == 0.0
