"""Energy model details and user-session error paths."""

import numpy as np
import pytest

from repro.accel.accelerator import AcceleratorModel, TPU_V1_CONFIG
from repro.accel.models import build_model
from repro.analysis.area import AsicAreaModel
from repro.analysis.energy import EnergyModel
from repro.core.errors import SessionError
from repro.core.session import UserSession
from repro.crypto.pki import ManufacturerCA
from repro.crypto.rng import HmacDrbg
from repro.protection.none import NoProtection


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def run(self):
        accel = AcceleratorModel(TPU_V1_CONFIG)
        model = build_model("alexnet")
        return model, accel.run(model, NoProtection())

    def test_ops_counts_two_per_mac(self, run):
        model, _ = run
        energy = EnergyModel(accelerator_power_w=40.0)
        assert energy.ops(model, batch=1) == 2 * model.macs(1)

    def test_efficiency_uses_power(self, run):
        model, result = run
        energy = EnergyModel(accelerator_power_w=40.0)
        eff40 = energy.efficiency_gops_per_w(model, result)
        eff80 = energy.efficiency_gops_per_w(model, result, power_w=80.0)
        assert eff40 == pytest.approx(2 * eff80)

    def test_total_power_includes_engines(self):
        energy = EnergyModel(accelerator_power_w=40.0)
        with_engines = energy.total_power_w(aes_engines=344, area_model=AsicAreaModel())
        assert with_engines == pytest.approx(40.0 + 344 * 3.85e-3, rel=0.01)

    def test_zero_power_guard(self, run):
        model, result = run
        energy = EnergyModel(accelerator_power_w=0.0)
        assert energy.efficiency_gops_per_w(model, result) == 0.0


class TestSessionErrorPaths:
    @pytest.fixture
    def user(self):
        ca = ManufacturerCA(HmacDrbg(b"sess-ca"))
        return UserSession(ca.root_public, HmacDrbg(b"sess-user"))

    def test_init_before_authenticate(self, user):
        with pytest.raises(SessionError):
            user.build_init_session()

    def test_complete_before_build(self, user):
        from repro.core.device import SessionAck

        with pytest.raises(SessionError):
            user.complete_init_session(SessionAck(device_offer=b"x", integrity_enabled=True))

    def test_data_plane_before_session(self, user):
        with pytest.raises(SessionError):
            user.seal_weights(np.zeros((2, 2), dtype=np.int8))
        with pytest.raises(SessionError):
            user.seal_input(np.zeros((2, 2), dtype=np.int8))

    def test_not_established_flag(self, user):
        assert not user.established
