"""Chaos tests for the durable control plane: a *real* coordinator
process SIGKILLed mid-run and restarted against the same journal.

Two acceptance scenarios, both over real HTTP with real ``repro``
subprocesses on both sides of the wire:

* **Sweep** — ``repro sweep --distributed --journal`` is killed by the
  ``dist.journal`` fault the instant the second journal append (the
  second unit commit) would land, so exactly one commit is durable.
  Two ``repro work --reconnect-timeout 0`` workers must survive the
  outage (never exit), re-register with the restarted coordinator
  under its bumped epoch, and finish the sweep; the final table must
  be bit-identical to an uninterrupted local run, and the journaled
  pre-crash commit must hash to its recorded ``rows_digest`` and match
  a local recomputation byte for byte.
* **Pipeline** — ``repro pipeline --distributed --journal`` dies the
  same way after exactly one chunk-seam envelope is journaled, and the
  lease-holding worker is killed with it. A replacement worker parked
  against the dead port (``--reconnect-timeout 0`` = wait forever)
  joins the restarted coordinator, which re-offers the unit with the
  journaled envelope riding the re-grant — so the successor *resumes*
  mid-unit (``resumed >= 1``) and the rows are bit-identical to an
  uninterrupted ``pipeline_rows`` call.

Both restarts run with ``--wait-workers`` far beyond the test timeout:
completion therefore *proves* the remote workers served every unit —
the local-pool fallback never had a chance to mask a broken
re-registration path.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.distributed import protocol, replay
from repro.experiments.executors import pipeline_rows
from repro.experiments.runner import Runner, _MEMORY_CACHE
from repro.experiments.spec import SweepSpec
from repro.testing import faults

SPEC = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
PIPELINE_PARAMS = {"workload": "streaming", "nbytes": 1 << 16,
                   "chunk_requests": 32, "schemes": ["np", "bp"]}
SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")

#: kill the coordinator before journal append #2 lands — append 0 is
#: the durable header, append 1 the first commit (sweep) or the first
#: migrated envelope (pipeline), so exactly one record beyond the
#: header survives the crash
KILL_PLAN = {"points": [
    {"site": "dist.journal", "at": 2, "action": "kill"}]}

JOURNAL_LINE = re.compile(
    r"^# journal .+ epoch=(\d+) replayed_units=(\d+) truncated=(\d+)",
    re.MULTILINE)


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    _MEMORY_CACHE.clear()
    yield
    faults.clear_env()
    _MEMORY_CACHE.clear()


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _env(plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    if plan is not None:
        env[faults.ENV_VAR] = json.dumps(plan)
    return env


def _spawn(argv, tmp_path, tag, plan=None):
    """Start a ``repro`` subprocess with stdout/stderr teed to files
    (pipes would deadlock against a process we intend to SIGKILL)."""
    out = open(tmp_path / f"{tag}.out", "wb")
    err = open(tmp_path / f"{tag}.err", "wb")
    proc = subprocess.Popen([sys.executable, "-m", "repro"] + argv,
                            env=_env(plan), stdout=out, stderr=err)
    proc._tee = (out, err)  # closed by _reap
    return proc


def _reap(proc):
    for handle in getattr(proc, "_tee", ()):
        handle.close()


def _kill_all(*procs):
    for proc in procs:
        if proc is not None and proc.poll() is None:
            proc.kill()
    for proc in procs:
        if proc is not None:
            proc.wait(timeout=30)
            _reap(proc)


def _spawn_worker(url, name, tmp_path):
    """A ``repro work`` subprocess with the reconnect budget disabled:
    it must outlive any coordinator outage, never exiting on its own."""
    return _spawn(["work", url, "--name", name, "--workers", "1",
                   "--no-cache", "--reconnect-timeout", "0"],
                  tmp_path, f"worker-{name}")


def _journal_announce(stderr_path):
    """Parse the ``# journal ... epoch=E replayed_units=R truncated=T``
    line the coordinator CLI prints at startup."""
    text = stderr_path.read_text()
    match = JOURNAL_LINE.search(text)
    assert match, f"no journal announce line in stderr:\n{text}"
    return tuple(int(group) for group in match.groups())


def test_sweep_coordinator_sigkill_restart_bit_identical(tmp_path):
    jobs = SPEC.jobs()
    with Runner(workers=2, cache=None) as runner:
        table = runner.run(jobs).with_normalized()
    reference = table.to_json()
    _MEMORY_CACHE.clear()

    port = _free_port()
    journal = tmp_path / "sweep.journal"
    out_path = tmp_path / "table.json"
    argv = ["sweep", "--models", "alexnet,mobilenet", "--schemes", "np,bp",
            "--distributed", "--listen", f"127.0.0.1:{port}",
            "--unit-jobs", "1", "--wait-workers", "600",
            "--workers", "1", "--no-cache", "--format", "json",
            "--out", str(out_path), "--journal", str(journal)]
    url = f"http://127.0.0.1:{port}"

    coordinator = workers = None
    try:
        coordinator = _spawn(argv, tmp_path, "coord1", plan=KILL_PLAN)
        workers = [_spawn_worker(url, "w1", tmp_path),
                   _spawn_worker(url, "w2", tmp_path)]

        # the fault plan SIGKILLs the coordinator at journal append #2
        assert coordinator.wait(timeout=300) == -signal.SIGKILL
        _reap(coordinator)

        # exactly one commit is durable, and it is *correct*: it hashes
        # to its recorded digest and matches a local recomputation
        state = replay(str(journal))
        assert state is not None and len(state.commits) == 1
        (unit, commit), = state.commits.items()
        rows = protocol.rows_from_wire(commit["rows"])
        assert protocol.rows_digest(rows) == commit["digest"]
        with Runner(workers=1, cache=None) as runner:
            assert rows == runner.compute_rows([jobs[unit]])
        _MEMORY_CACHE.clear()

        # the workers did NOT die with the coordinator — reconnect
        # budget 0 means they back off against the dead port forever
        time.sleep(1.0)
        assert all(worker.poll() is None for worker in workers), \
            "a worker exited when the coordinator was killed"

        # restart against the same journal (no fault plan this time)
        coordinator = _spawn(argv, tmp_path, "coord2")
        assert coordinator.wait(timeout=300) == 0
        _reap(coordinator)

        # completion with --wait-workers 600 proves the parked workers
        # re-registered under the new epoch and served every unit —
        # the local fallback never engages inside the test timeout
        epoch, replayed, truncated = _journal_announce(
            tmp_path / "coord2.err")
        assert epoch == 1
        assert replayed == 1
        assert truncated == 0

        assert out_path.read_text() == reference + "\n", \
            "recovered sweep table is not bit-identical to the local run"
        assert not journal.exists(), "spent journal was not discarded"

        # workers that catch the post-restart "done" exit 0 on their
        # own; one napping through the coordinator's brief done-window
        # is a benign race — it parks forever and is killed below
        for worker in workers:
            try:
                assert worker.wait(timeout=20) == 0
            except subprocess.TimeoutExpired:
                pass
    finally:
        _kill_all(coordinator, *(workers or ()))


def test_pipeline_coordinator_sigkill_envelope_rides_restart(tmp_path):
    reference = pipeline_rows(dict(PIPELINE_PARAMS))
    _MEMORY_CACHE.clear()
    expected = json.dumps(reference, indent=2, sort_keys=True) + "\n"

    port = _free_port()
    journal = tmp_path / "pipeline.journal"
    argv = ["pipeline", "--workload", "streaming", "--schemes", "np,bp",
            "--chunk-requests", "32", "--params", '{"nbytes": 65536}',
            "--distributed", "--listen", f"127.0.0.1:{port}",
            "--wait-workers", "600", "--checkpoint-every", "1",
            "--no-cache", "--journal", str(journal)]
    url = f"http://127.0.0.1:{port}"

    coordinator = victim = survivor = None
    try:
        coordinator = _spawn(argv, tmp_path, "coord1", plan=KILL_PLAN)
        victim = _spawn_worker(url, "victim", tmp_path)

        # append 0 = header, append 1 = the victim's first chunk-seam
        # envelope; the coordinator dies accepting the second one
        assert coordinator.wait(timeout=300) == -signal.SIGKILL
        _reap(coordinator)
        state = replay(str(journal))
        assert state is not None and not state.commits
        assert 0 in state.checkpoints  # the surviving envelope

        # kill the lease holder too: only the *journaled* envelope can
        # carry its progress across the restart
        _kill_all(victim)
        victim = None

        # the successor parks against the dead port (budget disabled)
        survivor = _spawn_worker(url, "survivor", tmp_path)
        time.sleep(1.0)
        assert survivor.poll() is None

        coordinator = _spawn(argv, tmp_path, "coord2")
        assert coordinator.wait(timeout=300) == 0
        _reap(coordinator)

        epoch, replayed, truncated = _journal_announce(
            tmp_path / "coord2.err")
        assert epoch == 1
        assert replayed == 0  # no commit survived — only the envelope
        assert truncated == 0

        # the journaled envelope rode the re-grant: the successor
        # resumed mid-unit instead of recomputing from the start
        summary = (tmp_path / "coord2.err").read_text()
        resumed = re.search(r"resumed=(\d+)", summary)
        assert resumed and int(resumed.group(1)) >= 1, summary

        assert (tmp_path / "coord2.out").read_text() == expected, \
            "recovered pipeline rows are not bit-identical"
        assert not journal.exists(), "spent journal was not discarded"
    finally:
        _kill_all(coordinator, victim, survivor)
