"""Partition-tolerance chaos tests for distributed sweep execution.

The acceptance scenario: a sweep sharded across multiple workers where
one worker is SIGKILLed mid-lease (a real subprocess, killed by the
fault harness the instant it holds a fresh lease) and another is
partitioned (every heartbeat dropped, its result delayed past the
lease term) must still complete, and the assembled table must be
**bit-identical** to the same sweep through a local ``Runner.run`` —
plus the late result from the lease-expired-then-returned worker must
be detected as a duplicate and dropped with the metric incremented.

All network faults are injected in-process via the ``dist.*`` sites
(worker-scoped as ``<site>@<name>``), so every interleaving here is
deterministic up to scheduling noise the protocol must absorb anyway.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.distributed import SweepCoordinator, Worker, WorkerConfig
from repro.experiments.runner import Runner, _MEMORY_CACHE
from repro.experiments.spec import SweepSpec
from repro.experiments.table import ResultTable
from repro.testing import faults

SPEC = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))
SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    _MEMORY_CACHE.clear()
    yield
    faults.clear_env()
    _MEMORY_CACHE.clear()


def _reference(jobs):
    with Runner(workers=2, cache=None) as runner:
        reference = runner.run(jobs).to_json()
    _MEMORY_CACHE.clear()
    return reference


def _table(rows_per_job) -> str:
    table = ResultTable()
    for rows in rows_per_job:
        table.extend(rows)
    return table.to_json()


def _start_worker(url, name, fault_delay=0.1):
    """Run a Worker on a daemon thread; returns (thread, outcome dict)."""
    outcome = {}

    def work():
        try:
            worker = Worker(WorkerConfig(url=url, name=name, workers=1,
                                         log=False, fault_delay=fault_delay,
                                         reconnect_timeout=20.0))
            outcome["exit"] = worker.run()
        except BaseException as error:  # noqa: BLE001 — recorded for asserts
            outcome["error"] = error

    thread = threading.Thread(target=work, name=f"worker-{name}", daemon=True)
    thread.start()
    return thread, outcome


def _wait(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


def test_chaos_sigkill_and_partition_bit_identical(tmp_path):
    """The ISSUE's acceptance scenario, end to end over real HTTP."""
    jobs = SPEC.jobs()
    reference = _reference(jobs)

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=1,
                                   unit_jobs=1, lease_seconds=1.0,
                                   wait_workers=120.0)
    state = coordinator.state
    try:
        # -- worker 1: a real subprocess SIGKILLed mid-lease -------------
        # the fault plan kills it at dist.unit[0] — after the lease is
        # granted, before any heartbeat — so it dies holding the unit
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAULT_PLAN"] = json.dumps({"points": [
            {"site": "dist.unit@dead", "at": 0, "action": "kill"}]})
        dead = subprocess.Popen(
            [sys.executable, "-m", "repro", "work", coordinator.url,
             "--name", "dead", "--workers", "1"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            assert dead.wait(timeout=60) == -signal.SIGKILL
        finally:
            if dead.poll() is None:
                dead.kill()
        leased_by_dead = state.counters["leases_granted"]
        assert leased_by_dead >= 1, "dead worker never held a lease"

        # -- worker 2: partitioned — heartbeats dropped, result held
        # past the lease term, so its unit expires, is re-dispatched,
        # and its eventual answer arrives as a (verified) duplicate
        faults.install({"points": [
            {"site": "dist.heartbeat@flaky", "action": "drop",
             "times": None},
            {"site": "dist.result@flaky", "at": 0, "action": "delay"}]})
        flaky_thread, flaky = _start_worker(coordinator.url, "flaky",
                                            fault_delay=3.0)
        _wait(lambda: state.counters["leases_granted"] > leased_by_dead)

        # -- worker 3: healthy; sweeps up everything the others forfeit
        healthy_thread, healthy = _start_worker(coordinator.url, "healthy")

        # completion first, then the partitioned worker's late result
        _wait(lambda: state.done, timeout=60.0)
        flaky_thread.join(timeout=60.0)
        healthy_thread.join(timeout=60.0)
        assert not flaky_thread.is_alive() and not healthy_thread.is_alive()
        assert flaky.get("exit") == 0, flaky.get("error")
        assert healthy.get("exit") == 0, healthy.get("error")
    finally:
        faults.clear()

    rows_per_job = coordinator.run()  # already done: assembles + closes
    assert _table(rows_per_job) == reference, \
        "distributed rows are not bit-identical to the local run"

    counters = state.counters
    # the SIGKILLed and the partitioned worker both forfeited a lease
    assert counters["lease_expirations"] >= 2
    assert state.snapshot()["redispatches"] >= 1
    # the lease-expired-then-returned worker's duplicate was detected
    assert counters["duplicate_results_dropped"] >= 1
    assert counters["duplicate_result_mismatches"] == 0
    assert counters["invalid_results"] == 0
    assert counters["units_completed"] == len(jobs)


def test_severed_result_ack_retries_to_duplicate():
    """The lost-ack case: the coordinator processes the commit but the
    response never reaches the worker. At-least-once retry must land as
    a verified duplicate, which the worker treats as success."""
    jobs = SPEC.jobs()[:2]
    reference = _reference(jobs)

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=1,
                                   unit_jobs=2, lease_seconds=5.0,
                                   wait_workers=120.0)
    state = coordinator.state
    faults.install({"points": [
        {"site": "dist.result@lossy", "at": 0, "action": "sever"}]})
    try:
        thread, outcome = _start_worker(coordinator.url, "lossy")
        _wait(lambda: state.done, timeout=60.0)
        thread.join(timeout=60.0)
        assert outcome.get("exit") == 0, outcome.get("error")
    finally:
        faults.clear()

    assert _table(coordinator.run()) == reference
    assert state.counters["results_total"] == 2  # original + retry
    assert state.counters["duplicate_results_dropped"] == 1
    assert state.counters["units_completed"] == 1


def test_zero_workers_falls_back_to_local_pool():
    """Graceful degradation: no worker ever connects, the sweep still
    completes (local pool through the same lease/commit path) and is
    bit-identical to a plain local run."""
    jobs = SPEC.jobs()
    reference = _reference(jobs)

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=2,
                                   unit_jobs=2, wait_workers=0.0)
    rows_per_job = coordinator.run()
    assert _table(rows_per_job) == reference
    counters = coordinator.state.counters
    assert counters["units_local"] == counters["units_completed"] == 2
    assert coordinator.state.live_remote_workers() == 0


def test_dropped_lease_requests_back_off_and_recover():
    """A worker whose first lease requests never reach the coordinator
    reconnects with backoff and still completes the sweep."""
    jobs = SPEC.jobs()[:2]
    reference = _reference(jobs)

    coordinator = SweepCoordinator(jobs, cache=None, local_workers=1,
                                   unit_jobs=1, lease_seconds=5.0,
                                   wait_workers=120.0)
    faults.install({"points": [
        {"site": "dist.lease@shaky", "at": 0, "action": "drop"},
        {"site": "dist.lease@shaky", "at": 1, "action": "drop"}]})
    try:
        thread, outcome = _start_worker(coordinator.url, "shaky")
        _wait(lambda: coordinator.state.done, timeout=60.0)
        thread.join(timeout=60.0)
        assert outcome.get("exit") == 0, outcome.get("error")
    finally:
        faults.clear()
    assert _table(coordinator.run()) == reference
    assert coordinator.state.counters["units_completed"] == 2
