"""The deterministic fault-injection harness itself.

Faults are data, not monkeypatching: a plan is a list of (site, index,
action) points, installed process-wide (or shipped to spawned workers
through ``REPRO_FAULT_PLAN``), and every production call site costs one
``faults.enabled()`` module-global check when no plan is installed.
These tests pin the plan grammar, the firing semantics (``at``,
``times``, ``once_file``), and the exec/data action split.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear_env()


class TestPlanGrammar:
    def test_disabled_by_default(self):
        assert not faults.enabled()
        faults.fire("worker.chunk", 0)          # no plan: no-ops
        assert faults.check("cache.put", 0) is None

    def test_install_and_clear(self):
        faults.install({"points": [
            {"site": "pipeline.chunk", "action": "raise"}]})
        assert faults.enabled()
        faults.clear()
        assert not faults.enabled()

    def test_rejects_unknown_fields_and_actions(self):
        with pytest.raises(ValueError):
            faults.install({"points": [{"site": "x", "action": "explode"}]})
        with pytest.raises(ValueError):
            faults.install({"points": [
                {"site": "x", "action": "raise", "banana": 1}]})
        with pytest.raises(ValueError):
            faults.install({"nope": []})


class TestFiring:
    def test_raise_at_index(self):
        faults.install({"points": [
            {"site": "pipeline.chunk", "at": 2, "action": "raise"}]})
        faults.fire("pipeline.chunk", 0)
        faults.fire("pipeline.chunk", 1)
        with pytest.raises(faults.FaultInjected):
            faults.fire("pipeline.chunk", 2)

    def test_site_isolation(self):
        faults.install({"points": [
            {"site": "pipeline.chunk", "action": "raise"}]})
        faults.fire("worker.chunk", 0)          # different site: untouched
        with pytest.raises(faults.FaultInjected):
            faults.fire("pipeline.chunk", 0)

    def test_times_caps_firings(self):
        faults.install({"points": [
            {"site": "rewriter.rewrite", "action": "raise", "times": 2}]})
        for _ in range(2):
            with pytest.raises(faults.FaultInjected):
                faults.fire("rewriter.rewrite", 0)
        faults.fire("rewriter.rewrite", 0)      # budget spent

    def test_any_index_when_at_omitted(self):
        faults.install({"points": [
            {"site": "service.flight", "action": "raise"}]})
        with pytest.raises(faults.FaultInjected):
            faults.fire("service.flight", 41)

    def test_once_file_survives_process_boundaries(self, tmp_path):
        marker = str(tmp_path / "fired.once")
        plan = {"points": [
            {"site": "worker.chunk", "action": "raise", "once_file": marker}]}
        faults.install(plan)
        with pytest.raises(faults.FaultInjected):
            faults.fire("worker.chunk", 0)
        assert os.path.exists(marker)
        # a "different process" (fresh in-memory plan, same marker file)
        # must not fire again
        faults.clear()
        faults.install(plan)
        faults.fire("worker.chunk", 0)

    def test_data_actions_are_returned_not_executed(self):
        faults.install({"points": [
            {"site": "cache.put", "at": 1, "action": "corrupt"}]})
        assert faults.check("cache.put", 0) is None
        assert faults.check("cache.put", 1) == "corrupt"
        assert faults.check("cache.put", 1) is None  # times=1 default


class TestEnvTransport:
    def test_env_round_trip(self):
        plan = {"points": [{"site": "pipeline.chunk", "at": 1,
                            "action": "raise"}]}
        value = faults.install_env(plan)
        assert json.loads(value) == plan
        assert os.environ[faults.ENV_VAR] == value
        faults.clear_env()
        assert faults.ENV_VAR not in os.environ
        assert not faults.enabled()

    def test_fresh_interpreter_loads_plan_from_env(self, tmp_path):
        plan = json.dumps({"points": [
            {"site": "pipeline.chunk", "action": "raise"}]})
        code = ("from repro.testing import faults; import sys\n"
                "sys.exit(0 if faults.enabled() else 1)")
        env = dict(os.environ, REPRO_FAULT_PLAN=plan,
                   PYTHONPATH=os.pathsep.join(sys.path))
        assert subprocess.run([sys.executable, "-c", code],
                              env=env).returncode == 0

    def test_env_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"points": [
            {"site": "worker.chunk", "action": "raise"}]}))
        os.environ[faults.ENV_VAR] = "@" + str(path)
        try:
            faults._load_from_env()
            assert faults.enabled()
        finally:
            del os.environ[faults.ENV_VAR]
            faults.clear()
