"""Chaos tests for distributed *pipeline* execution: checkpoint
migration under real process death.

Three acceptance scenarios, each against a real ``repro work``
subprocess over real HTTP:

* **SIGKILL at a seam** — the fault plan kills the worker at its
  second envelope upload, so exactly one envelope migrated before the
  process died holding the lease. After the lease term a survivor must
  resume *from that envelope* (``resumed_units`` ≥ 1) and finish with
  rows bit-identical to an uninterrupted local run.
* **Corruption in flight** — the first upload is damaged on the wire;
  the coordinator must reject it (HTTP 400, nothing stored) and the
  successor falls back to the start of the unit — slower, never wrong.
* **SIGTERM drain** — a real signal to a real ``repro work`` process
  parks the pipeline at the next seam, uploads the final envelope,
  deregisters, and exits 0; the successor resumes from the drained
  worker's envelope without waiting out the lease term.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.distributed import SweepCoordinator, Worker, WorkerConfig
from repro.experiments.executors import pipeline_rows
from repro.experiments.jobs import Job, canonical_json
from repro.experiments.runner import _MEMORY_CACHE
from repro.testing import faults

PARAMS = {"workload": "streaming", "nbytes": 1 << 16, "chunk_requests": 32,
          "schemes": ["np", "bp"]}
SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    _MEMORY_CACHE.clear()
    yield
    faults.clear_env()
    _MEMORY_CACHE.clear()


def pipeline_job():
    return Job("pipeline_run", canonical_json(PARAMS))


def _spawn_cli_worker(url, name, plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    if plan is not None:
        env[faults.ENV_VAR] = json.dumps(plan)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work", url, "--name", name,
         "--workers", "1", "--no-cache"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _start_survivor(url, name="survivor"):
    outcome = {}

    def work():
        worker = Worker(WorkerConfig(url=url, name=name, log=False,
                                     reconnect_timeout=30.0))
        outcome["exit"] = worker.run()

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    return thread, outcome


def _wait(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


def test_sigkill_mid_unit_survivor_resumes_from_migrated_envelope():
    reference = pipeline_rows(dict(PARAMS))
    _MEMORY_CACHE.clear()

    coordinator = SweepCoordinator([pipeline_job()], cache=None,
                                   lease_seconds=1.0, wait_workers=120.0,
                                   checkpoint_every=1)
    state = coordinator.state
    victim = _spawn_cli_worker(coordinator.url, "victim", plan={"points": [
        {"site": "dist.checkpoint@victim", "at": 1, "action": "kill"}]})
    try:
        assert victim.wait(timeout=120) == -signal.SIGKILL
    finally:
        if victim.poll() is None:
            victim.kill()
    # it died *after* the first envelope landed — mid-unit, for sure
    assert state.counters["checkpoints_migrated"] >= 1
    assert state.counters["units_completed"] == 0

    thread, outcome = _start_survivor(coordinator.url)
    rows_per_job = coordinator.run()
    thread.join(timeout=60.0)
    assert outcome.get("exit") == 0

    assert rows_per_job[0] == reference, \
        "resumed rows are not bit-identical to the uninterrupted run"
    counters = state.counters
    assert counters["resumed_units"] >= 1
    assert counters["lease_expirations"] >= 1
    assert counters["checkpoint_rejects"] == 0


def test_corrupt_envelope_rejected_successor_restarts_unit():
    reference = pipeline_rows(dict(PARAMS))
    _MEMORY_CACHE.clear()

    coordinator = SweepCoordinator([pipeline_job()], cache=None,
                                   lease_seconds=1.0, wait_workers=120.0,
                                   checkpoint_every=1)
    state = coordinator.state
    victim = _spawn_cli_worker(coordinator.url, "victim", plan={"points": [
        {"site": "dist.checkpoint@victim", "at": 0, "action": "corrupt"},
        {"site": "dist.checkpoint@victim", "at": 1, "action": "kill"}]})
    try:
        assert victim.wait(timeout=120) == -signal.SIGKILL
    finally:
        if victim.poll() is None:
            victim.kill()
    # the damaged envelope was rejected and nothing was stored
    assert state.counters["checkpoint_rejects"] >= 1
    assert state.counters["checkpoints_migrated"] == 0

    thread, outcome = _start_survivor(coordinator.url)
    rows_per_job = coordinator.run()
    thread.join(timeout=60.0)
    assert outcome.get("exit") == 0

    # slower — the successor started from scratch — but never wrong
    assert rows_per_job[0] == reference
    assert state.counters["resumed_units"] == 0
    assert state.counters["units_completed"] == 1


def test_sigterm_drain_parks_at_seam_and_successor_resumes():
    reference = pipeline_rows(dict(PARAMS))
    _MEMORY_CACHE.clear()

    # a 60 s lease term: only the drain's deregister (which releases the
    # lease immediately) can make the unit re-grantable within the test
    coordinator = SweepCoordinator([pipeline_job()], cache=None,
                                   lease_seconds=60.0, wait_workers=120.0,
                                   checkpoint_every=1)
    state = coordinator.state
    drainee = _spawn_cli_worker(coordinator.url, "drainee")
    try:
        _wait(lambda: state.counters["checkpoints_migrated"] >= 1)
        drainee.send_signal(signal.SIGTERM)
        assert drainee.wait(timeout=60) == 0
    finally:
        if drainee.poll() is None:
            drainee.kill()
    counters = state.counters
    assert counters["workers_deregistered"] == 1
    assert counters["units_completed"] == 0  # parked, not finished

    thread, outcome = _start_survivor(coordinator.url)
    rows_per_job = coordinator.run()
    thread.join(timeout=60.0)
    assert outcome.get("exit") == 0

    assert rows_per_job[0] == reference
    assert state.counters["resumed_units"] >= 1
    assert state.counters["lease_expirations"] == 0  # released, not expired
