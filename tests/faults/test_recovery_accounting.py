"""`recovery_counts()` accounting: the counters that `repro serve` and
the distributed tier export must be *exact* under deterministic fault
plans, and must survive pool rebuilds and runner teardowns — they are
process-wide facts about recoveries, not per-runner state.

Exactness needs care with process pools: a forked pool worker inherits
the plan with `fired=0`, so any plan used here pins faults with
`once_file` (at-most-once across processes) and uses single-chunk
layouts with short timeouts so one kill maps to exactly one rebuild
and one re-dispatched chunk.
"""

import pytest

from repro.experiments.runner import (
    Runner,
    _MEMORY_CACHE,
    note_recovery,
    recovery_counts,
)
from repro.experiments.spec import SweepSpec
from repro.testing import faults

JOBS = SweepSpec(models=("alexnet",), schemes=("np", "bp")).jobs()


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    _MEMORY_CACHE.clear()
    yield
    faults.clear_env()
    _MEMORY_CACHE.clear()


class TestSnapshotSemantics:
    def test_snapshot_is_a_copy(self):
        snap = recovery_counts()
        snap["worker_restarts"] += 1000
        assert recovery_counts()["worker_restarts"] != snap["worker_restarts"]

    def test_note_recovery_accumulates_and_creates_keys(self):
        before = recovery_counts()
        note_recovery("worker_restarts")
        note_recovery("chunk_retries", 3)
        note_recovery("test_only_key", 2)
        after = recovery_counts()
        assert after["worker_restarts"] == before["worker_restarts"] + 1
        assert after["chunk_retries"] == before["chunk_retries"] + 3
        assert after["test_only_key"] == before.get("test_only_key", 0) + 2


class TestExactUnderKilledWorker:
    def test_one_kill_counts_one_restart_one_retry(self, tmp_path):
        """One SIGKILLed worker on a single-chunk dispatch is exactly
        one pool rebuild + one re-dispatched chunk — not two, not a
        count that depends on pool width or chunk interleaving."""
        before = recovery_counts()
        faults.install_env({"points": [
            {"site": "worker.chunk", "at": 0, "action": "kill",
             "once_file": str(tmp_path / "kill.once")}]})
        try:
            with Runner(workers=2, chunksize=len(JOBS), chunk_timeout=5.0,
                        chunk_retries=2) as runner:
                table = runner.run(JOBS)
        finally:
            faults.clear_env()
        assert len(table) == len(JOBS)
        after = recovery_counts()
        assert after["worker_restarts"] == before["worker_restarts"] + 1
        assert after["chunk_retries"] == before["chunk_retries"] + 1

    def test_two_kills_count_two_restarts(self, tmp_path):
        """Sequential kills across *separate* sweeps accumulate — the
        counters are monotone across pool rebuilds and runner lifetimes."""
        before = recovery_counts()
        for attempt in range(2):
            _MEMORY_CACHE.clear()
            faults.install_env({"points": [
                {"site": "worker.chunk", "at": 0, "action": "kill",
                 "once_file": str(tmp_path / f"kill-{attempt}.once")}]})
            try:
                with Runner(workers=2, chunksize=len(JOBS),
                            chunk_timeout=5.0, chunk_retries=2) as runner:
                    runner.run(JOBS)
            finally:
                faults.clear_env()
        after = recovery_counts()
        assert after["worker_restarts"] == before["worker_restarts"] + 2
        assert after["chunk_retries"] == before["chunk_retries"] + 2


class TestSurvivesPoolRebuilds:
    def test_counts_survive_runner_close_and_new_runner(self, tmp_path):
        """Tearing the pool down (close + fresh Runner) must not reset
        the counters — a service rebuilding pools between flights still
        reports every historical recovery."""
        before = recovery_counts()
        faults.install_env({"points": [
            {"site": "worker.chunk", "at": 0, "action": "kill",
             "once_file": str(tmp_path / "kill.once")}]})
        try:
            with Runner(workers=2, chunksize=len(JOBS), chunk_timeout=5.0,
                        chunk_retries=2) as runner:
                runner.run(JOBS)
        finally:
            faults.clear_env()
        mid = recovery_counts()
        assert mid["worker_restarts"] == before["worker_restarts"] + 1

        # a brand-new runner (new pool manager, clean sweep) sees the
        # same counters and adds nothing without a fault
        _MEMORY_CACHE.clear()
        with Runner(workers=2, chunksize=len(JOBS)) as runner:
            runner.run(JOBS)
        after = recovery_counts()
        assert after["worker_restarts"] == mid["worker_restarts"]
        assert after["chunk_retries"] == mid["chunk_retries"]
