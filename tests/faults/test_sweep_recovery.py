"""Worker-crash recovery: a SIGKILLed pool worker must not change a
sweep's rows, only its wall clock.

The deterministic fault plan kills exactly one worker (``once_file``
guarantees the re-dispatched chunk survives), and the recovered sweep's
table is asserted *bit-identical* to the unfaulted reference — the
recovery machinery re-dispatches lost work, it never re-orders or
drops rows.
"""

import os

import pytest

from repro.experiments.runner import (
    JobExecutionError,
    Runner,
    _MEMORY_CACHE,
    recovery_counts,
)
from repro.experiments.spec import SweepSpec
from repro.testing import faults

SPEC = SweepSpec(models=("alexnet", "mobilenet"), schemes=("np", "bp"))


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    _MEMORY_CACHE.clear()
    yield
    faults.clear_env()
    _MEMORY_CACHE.clear()


def _reference():
    with Runner(workers=2, chunksize=1) as runner:
        return runner.run(SPEC).to_json()


def test_sigkilled_worker_mid_sweep_rows_bit_identical(tmp_path):
    """The ISSUE's required scenario: SIGKILL one pool worker mid-sweep,
    sweep completes, rows bit-identical to the unfaulted run."""
    reference = _reference()
    _MEMORY_CACHE.clear()
    before = recovery_counts()
    faults.install_env({"points": [
        {"site": "worker.chunk", "at": 1, "action": "kill",
         "once_file": str(tmp_path / "killed.once")}]})
    try:
        with Runner(workers=2, chunksize=1, chunk_timeout=30.0,
                    chunk_retries=2) as runner:
            recovered = runner.run(SPEC).to_json()
    finally:
        faults.clear_env()
    assert recovered == reference
    after = recovery_counts()
    assert after["worker_restarts"] > before["worker_restarts"]
    assert after["chunk_retries"] > before["chunk_retries"]
    assert os.path.exists(tmp_path / "killed.once")


def test_straggler_duplicate_rescues_lost_chunk(tmp_path):
    """With no chunk timeout, the EWMA straggler duplicate alone
    rescues a chunk whose worker was killed (the pool replenishes the
    worker; the duplicate dispatch lands on it; first result wins)."""
    reference = _reference()
    _MEMORY_CACHE.clear()
    faults.install_env({"points": [
        {"site": "worker.chunk", "at": 2, "action": "kill",
         "once_file": str(tmp_path / "killed.once")}]})
    try:
        with Runner(workers=2, chunksize=1, chunk_timeout=None,
                    chunk_retries=2, straggler_factor=3.0) as runner:
            recovered = runner.run(SPEC).to_json()
    finally:
        faults.clear_env()
    assert recovered == reference


def test_retry_budget_exhaustion_raises_with_completed_rows(tmp_path):
    """A chunk that dies on *every* dispatch eventually surfaces as
    JobExecutionError naming a job of the lost chunk — after exactly
    the configured number of redispatches — with the completed chunks'
    rows preserved for caching."""
    faults.install_env({"points": [
        {"site": "worker.chunk", "at": 0, "action": "raise",
         "times": None}]})
    try:
        with Runner(workers=2, chunksize=1, chunk_timeout=30.0,
                    chunk_retries=1) as runner:
            with pytest.raises(JobExecutionError) as excinfo:
                runner.run(SPEC)
    finally:
        faults.clear_env()
    assert "worker lost or timed out" in str(excinfo.value)


def test_serial_path_untouched_by_worker_faults():
    """The workers<=1 path never crosses a process boundary, so a
    worker-site plan is inert there (sanity: fault scoping is real)."""
    reference = _reference()
    _MEMORY_CACHE.clear()
    faults.install({"points": [
        {"site": "worker.chunk", "action": "kill"}]})
    try:
        with Runner(workers=1) as runner:
            rows = runner.run(SPEC).to_json()
    finally:
        faults.clear()
    assert rows == reference
