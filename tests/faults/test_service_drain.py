"""Service durability: graceful drain checkpoints in-flight pipelines,
and a restarted daemon resumes them unprompted.

The drain protocol under test: SIGTERM/SIGINT (here triggered directly
via ``_begin_drain`` on the loop thread — the handler the signals are
bound to) flips the daemon into draining mode, where new submissions
get ``503 + Retry-After`` while in-flight pipelines are asked to
checkpoint at their next chunk seam. A fresh daemon pointed at the
same checkpoint directory re-admits the interrupted flight at startup,
finishes it from the cursor, and lands the rows in the shared caches —
so the client that retries after the restart sees the same bits an
uninterrupted run would have produced.
"""

import asyncio
import os
import threading
import time

import pytest

import repro.experiments.runner as runner_module
from repro import perf
from repro.experiments.executors import pipeline_rows
from repro.service import ReproService, ServeConfig, ServiceClient

#: ~1M streaming requests in 64 chunks: long enough that a drain
#: triggered after the first progress event always lands mid-flight,
#: short enough that the resumed remainder finishes in test time
DRAIN_JOB = {"kind": "pipeline", "workload": "streaming",
             "schemes": ["np"], "chunk_requests": 1 << 14,
             "params": {"nbytes": 64 << 20}}
#: never finished by any test: parked to hold the draining state open
BLOCKER_JOB = {"kind": "pipeline", "workload": "streaming",
               "schemes": ["np"], "chunk_requests": 1 << 14,
               "params": {"nbytes": 512 << 20}}


@pytest.fixture(autouse=True)
def fresh_memory_cache():
    previous = perf.fast_enabled()
    perf.set_fast(True)
    runner_module._MEMORY_CACHE.clear()
    yield
    runner_module._MEMORY_CACHE.clear()
    perf.set_fast(previous)
    perf.clear_caches()


def start_service(**overrides):
    overrides.setdefault("cache", False)
    config = ServeConfig(port=0, workers=2, **overrides)
    service = ReproService(config)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve_forever(ready)), daemon=True)
    thread.start()
    assert ready.wait(15), "service failed to come up"
    client = ServiceClient("127.0.0.1", service.port, timeout=120)
    return service, client, thread


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached")


def trigger_drain(service):
    """What the SIGTERM handler does, minus the signal (the test
    process can't take a real SIGTERM without killing pytest)."""
    service._loop.call_soon_threadsafe(service._begin_drain)
    wait_for(lambda: service._draining, timeout=10.0)


def read_until(events, name):
    seen = []
    for event in events:
        seen.append(event)
        if event["event"] == name:
            return seen
    raise AssertionError(f"stream ended without a {name!r} event: {seen}")


def test_draining_rejects_new_jobs_with_503():
    """While draining, the front door sheds with 503 + Retry-After;
    the parked flight keeps streaming to its existing subscriber."""
    service, client, thread = start_service(max_running=1, drain_grace=60.0)
    events = client.submit(BLOCKER_JOB)
    try:
        read_until(events, "progress")
        before = client.metrics()["counters"]["rejected_total"]
        trigger_drain(service)
        assert client.metrics()["gauges"]["draining"] is True
        with pytest.raises(RuntimeError, match="503.*draining"):
            client.submit(DRAIN_JOB)
        assert client.metrics()["counters"]["rejected_total"] == before + 1
    finally:
        # hanging up on the blocker cancels it at the next chunk seam;
        # with no checkpoint_dir the drain then completes immediately
        events.close()
    thread.join(20)
    assert not thread.is_alive(), "drain did not shut the service down"


def test_drain_checkpoints_flight_then_restart_resumes_it(tmp_path):
    """The full durability loop: drain mid-pipeline -> terminal
    ``checkpointed`` event + envelope on disk -> fresh daemon on the
    same checkpoint_dir resumes the flight at startup -> a client
    retry is served the bit-identical rows from cache."""
    ckpt_dir = str(tmp_path / "ckpt")
    cache_dir = str(tmp_path / "cache")
    os.makedirs(ckpt_dir)

    service, client, thread = start_service(
        checkpoint_dir=ckpt_dir, drain_grace=60.0,
        cache=True, cache_dir=cache_dir)
    events = client.submit(DRAIN_JOB)
    seen = read_until(events, "progress")
    key = seen[0]["key"]
    trigger_drain(service)
    terminal = read_until(events, "checkpointed")[-1]

    ckpt_path = os.path.join(ckpt_dir, key + ".ckpt")
    assert terminal["checkpoint"] == ckpt_path
    assert os.path.exists(ckpt_path)
    assert 0 < terminal["requests_done"] < (64 << 20) // 64
    thread.join(20)
    assert not thread.is_alive(), "drain did not shut the service down"

    # --- restart: same checkpoint_dir, same cache ---
    runner_module._MEMORY_CACHE.clear()
    service2, client2, thread2 = start_service(
        checkpoint_dir=ckpt_dir, cache=True, cache_dir=cache_dir)
    try:
        # the startup scan re-admitted the flight with no client asking
        wait_for(lambda: client2.metrics()["counters"]["admitted_total"] >= 1)
        # ... and it resumed from the envelope rather than recomputing
        wait_for(lambda: client2.metrics()["counters"]
                 ["flights_resumed_total"] >= 1)
        # a completed flight retires its checkpoint
        wait_for(lambda: not os.path.exists(ckpt_path), timeout=60.0)

        result = client2.run(DRAIN_JOB)
        assert result["cached"] is True
        reference = pipeline_rows({
            "workload": DRAIN_JOB["workload"],
            "schemes": DRAIN_JOB["schemes"],
            "chunk_requests": DRAIN_JOB["chunk_requests"],
            **DRAIN_JOB["params"]})
        assert result["rows"] == reference
    finally:
        service2.request_shutdown()
        thread2.join(15)


def test_stale_checkpoint_from_other_fingerprint_is_dropped(tmp_path):
    """A checkpoint whose filename doesn't match the key recomputed
    from the current code fingerprint (i.e. written by a different
    build) is unlinked at startup, never resumed: bit-identity only
    holds within one build."""
    from repro.checkpoint import save_checkpoint

    ckpt_dir = str(tmp_path)
    stale = os.path.join(ckpt_dir, "0" * 64 + ".ckpt")
    save_checkpoint(stale, {
        "kind": "trace-pipeline", "cursor": 100, "chunks": 2,
        "meta": {"job": {"kind": "pipeline",
                         "params": {"workload": "streaming",
                                    "schemes": ["np"],
                                    "chunk_requests": 1 << 12,
                                    "nbytes": 1 << 20}}}})
    service, client, thread = start_service(checkpoint_dir=ckpt_dir)
    try:
        wait_for(lambda: not os.path.exists(stale), timeout=10.0)
        assert client.metrics()["counters"]["flights_resumed_total"] == 0
        assert client.metrics()["counters"]["admitted_total"] == 0
    finally:
        service.request_shutdown()
        thread.join(15)


def test_unreadable_checkpoint_is_quarantined_at_startup(tmp_path):
    """A corrupt/truncated/future-version checkpoint in the scan
    directory is renamed to ``.corrupt`` at startup — preserved as
    evidence, never re-parsed on the next restart, and never partially
    resumed — while the daemon comes up healthy."""
    ckpt_dir = str(tmp_path)
    torn = os.path.join(ckpt_dir, "a" * 64 + ".ckpt")
    with open(torn, "w") as handle:
        handle.write('{"version": 1, "kind": "trace-pip')  # torn write
    future = os.path.join(ckpt_dir, "b" * 64 + ".ckpt")
    with open(future, "w") as handle:
        handle.write('{"version": 999, "kind": "trace-pipeline", "state": {}}')

    service, client, thread = start_service(checkpoint_dir=ckpt_dir)
    try:
        assert client.health()
        assert os.path.exists(torn + ".corrupt")
        assert os.path.exists(future + ".corrupt")
        assert not os.path.exists(torn)
        assert not os.path.exists(future)
        assert client.metrics()["counters"]["flights_resumed_total"] == 0
    finally:
        service.request_shutdown()
        thread.join(15)
