"""Result-cache durability under injected corruption.

``ResultCache.put`` publishes with fsync + atomic rename; ``get``
quarantines a corrupt entry (rename to ``.corrupt`` + count) instead
of re-parsing it forever. The fault plan damages entries *after* a
clean publish — simulating bit rot or torn writes from filesystems
without the fsync discipline — and the cache must degrade to a miss,
recompute, and heal.
"""

import json
import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.jobs import Job
from repro.testing import faults

ROWS = [{"model": "alexnet", "cycles": 123}]


@pytest.fixture(autouse=True)
def _clean():
    faults.clear()
    yield
    faults.clear()


def _cache(tmp_path) -> ResultCache:
    return ResultCache(directory=str(tmp_path), fingerprint="test-fp")


def test_corrupted_entry_quarantined_and_recomputed(tmp_path):
    cache = _cache(tmp_path)
    job = Job.make("pipeline_run", workload="streaming")
    faults.install({"points": [
        {"site": "cache.put", "at": 0, "action": "corrupt"}]})
    cache.put(job, ROWS)          # published, then damaged in place
    faults.clear()

    assert cache.get(job) is None  # corrupt: a miss, not a crash
    assert cache.corrupt == 1
    path = cache._path(cache.key(job))
    assert not os.path.exists(path)
    assert os.path.exists(path + ".corrupt")  # evidence preserved

    cache.put(job, ROWS)           # recompute-and-rewrite heals it
    assert cache.get(job) == ROWS
    assert cache.corrupt == 1      # quarantine counted exactly once


def test_truncated_entry_quarantined(tmp_path):
    cache = _cache(tmp_path)
    job = Job.make("pipeline_run", workload="random")
    faults.install({"points": [
        {"site": "cache.put", "at": 0, "action": "truncate"}]})
    cache.put(job, ROWS)
    faults.clear()
    path = cache._path(cache.key(job))
    assert 0 < os.path.getsize(path) < len(json.dumps(ROWS)) * 2

    assert cache.get(job) is None
    assert cache.corrupt == 1
    assert os.path.exists(path + ".corrupt")


def test_wrong_schema_is_quarantined_not_served(tmp_path):
    cache = _cache(tmp_path)
    job = Job.make("pipeline_run", workload="streaming")
    path = cache._path(cache.key(job))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"rows": "not-a-list"}, handle)
    assert cache.get(job) is None
    assert cache.corrupt == 1
    assert os.path.exists(path + ".corrupt")


def test_plain_miss_is_not_corruption(tmp_path):
    cache = _cache(tmp_path)
    assert cache.get(Job.make("pipeline_run", workload="streaming")) is None
    assert cache.misses == 1
    assert cache.corrupt == 0


def test_stats_reports_corruption(tmp_path):
    cache = _cache(tmp_path)
    assert "0 corrupt" in cache.stats


def test_no_temp_debris_after_put(tmp_path):
    cache = _cache(tmp_path)
    job = Job.make("pipeline_run", workload="streaming")
    cache.put(job, ROWS)
    debris = [name for _, _, files in os.walk(tmp_path) for name in files
              if name.endswith(".tmp")]
    assert debris == []
    assert cache.get(job) == ROWS
